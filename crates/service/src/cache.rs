//! Sharded LRU cache of scheduling solutions.
//!
//! Requests are keyed by their *canonical fingerprint*: the task weights
//! and replicability mask in chain order, the resource pool, and the
//! strategy policy. Two requests with the same fingerprint material are
//! the same scheduling instance, so the winning solution can be replayed
//! verbatim — the cache stores the full [`ScheduleOutcome`] and returns it
//! bit-identical (period string, decomposition, stages, core usage).
//!
//! The cache is sharded to keep lock contention off the worker-pool hot
//! path: a 64-bit FNV-1a fingerprint picks the shard, and within a shard a
//! `HashMap` keyed by the *full* key material (not the fingerprint) makes
//! lookups collision-safe. Eviction is least-recently-used per shard,
//! tracked with monotonic access stamps.
//!
//! Only *complete* outcomes are cached: a portfolio result truncated by a
//! deadline may be improvable, and caching it would let one slow request
//! poison every later identical request (see
//! [`Engine`](crate::engine::Engine)).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::request::{Objective, Policy, ScheduleOutcome, ScheduleRequest, TaskSpec};

/// Canonical key material of a scheduling instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Task weights and replicability mask, in chain order.
    pub tasks: Vec<TaskSpec>,
    /// Big cores in the pool.
    pub big_cores: u64,
    /// Little cores in the pool.
    pub little_cores: u64,
    /// Strategy policy (distinct policies may produce distinct winners).
    pub policy: Policy,
    /// Optimization objective. A period-optimal entry must never answer
    /// an energy request (or vice versa), so the objective — including
    /// the exact energy target — is full key material.
    pub objective: Objective,
}

impl CacheKey {
    /// Extracts the key material from a request. The request `id` and
    /// deadline are deliberately *not* part of the key: they do not change
    /// what the best complete answer is.
    #[must_use]
    pub fn for_request(req: &ScheduleRequest) -> Self {
        CacheKey {
            tasks: req.tasks.clone(),
            big_cores: req.big_cores,
            little_cores: req.little_cores,
            policy: req.policy.clone(),
            objective: req.objective.clone(),
        }
    }

    /// 64-bit FNV-1a fingerprint over the canonical byte encoding of the
    /// full key (chain, pool and policy). Equality always re-checks the
    /// full key, so fingerprint collisions cost a probe, never a wrong
    /// answer.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fnv(true)
    }

    /// Pool-free sibling of [`CacheKey::fingerprint`]: hashes the chain
    /// and the policy but *not* the resource pool. The shard router keys
    /// on this one, so every pool shape of one chain lands on the same
    /// shard — which is what lets that shard's chain tier solve the chain
    /// once and answer the whole fleet's pool sweep by extraction.
    #[must_use]
    pub fn chain_fingerprint(&self) -> u64 {
        self.fnv(false)
    }

    fn fnv(&self, include_pool: bool) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.tasks.len() as u64).to_le_bytes());
        for t in &self.tasks {
            eat(&t.weight_big.to_le_bytes());
            eat(&t.weight_little.to_le_bytes());
            eat(&[u8::from(t.replicable)]);
        }
        if include_pool {
            eat(&self.big_cores.to_le_bytes());
            eat(&self.little_cores.to_le_bytes());
        }
        match &self.policy {
            Policy::Portfolio => eat(&[0]),
            Policy::Strategy(name) => {
                eat(&[1]);
                eat(name.as_bytes());
            }
        }
        // The default period objective eats no bytes, keeping every
        // pre-energy fingerprint (and thus shard routing and snapshots)
        // exactly as it was; the energy objective appends a tag plus its
        // canonical target string. Full-key equality still separates the
        // objectives even if the fingerprints were ever to collide.
        if let Objective::MinEnergy { target_period } = &self.objective {
            eat(&[2]);
            eat(target_period.as_bytes());
        }
        h
    }
}

struct Shard {
    /// Full-key map; the value carries the LRU stamp of its last access.
    entries: HashMap<CacheKey, (u64, ScheduleOutcome)>,
    /// Monotonic per-shard access counter feeding the LRU stamps.
    clock: u64,
}

/// Point-in-time counters of a [`SolutionCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached outcome.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Successful inserts (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries currently resident, across all shards.
    pub entries: usize,
    /// Maximum resident entries (shards × per-shard capacity).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; 0 when no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU mapping scheduling instances to their winning outcomes.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl SolutionCache {
    /// Builds a cache of `capacity` total entries spread over `shards`
    /// shards (both clamped to at least 1 shard; a zero capacity makes
    /// every insert a no-op, which is valid and disables caching).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards);
        SolutionCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // High bits: FNV-1a mixes the low bits of long inputs best, but the
        // whole hash is well distributed; any stable reduction works.
        let idx = (key.fingerprint() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks up an instance. On a hit, the outcome is returned with
    /// `cache_hit` set and the entry is marked most-recently-used.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<ScheduleOutcome> {
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.entries.get_mut(key) {
            Some((last_used, outcome)) => {
                *last_used = stamp;
                let mut out = outcome.clone();
                out.cache_hit = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) an outcome. The stored copy always has
    /// `cache_hit == false`; hits flip the flag on the returned clone
    /// only. Evicts the least-recently-used entry of the target shard
    /// when the shard is full.
    pub fn insert(&self, key: CacheKey, mut outcome: ScheduleOutcome) {
        if self.per_shard_capacity == 0 {
            return;
        }
        outcome.cache_hit = false;
        let mut shard = self.shard(&key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        let fresh = !shard.entries.contains_key(&key);
        if fresh && shard.entries.len() >= self.per_shard_capacity {
            if let Some(lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, (stamp, outcome));
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
            capacity: self.per_shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::CoreType;
    use amp_core::Stage;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            tasks: vec![
                TaskSpec {
                    weight_big: seed,
                    weight_little: 2 * seed + 1,
                    replicable: seed.is_multiple_of(2),
                },
                TaskSpec {
                    weight_big: seed + 3,
                    weight_little: seed + 7,
                    replicable: true,
                },
            ],
            big_cores: 2,
            little_cores: 2,
            policy: Policy::Portfolio,
            objective: Objective::Period,
        }
    }

    fn outcome(tag: &str) -> ScheduleOutcome {
        ScheduleOutcome {
            strategy: tag.to_string(),
            period: "5/2".to_string(),
            period_f64: 2.5,
            decomposition: "[0-1]B1".to_string(),
            stages: vec![Stage::new(0, 1, 1, CoreType::Big)],
            used_big: 1,
            used_little: 0,
            cache_hit: false,
            complete: true,
            energy_milliwatts: None,
        }
    }

    #[test]
    fn hit_returns_identical_payload_with_flag_set() {
        let cache = SolutionCache::new(8, 2);
        let k = key(1);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), outcome("HeRAD"));
        let hit = cache.get(&k).expect("hit");
        assert!(hit.cache_hit);
        let mut expect = outcome("HeRAD");
        expect.cache_hit = true;
        assert_eq!(hit, expect);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_instances_do_not_alias() {
        let cache = SolutionCache::new(64, 4);
        for seed in 0..20 {
            cache.insert(key(seed), outcome(&format!("s{seed}")));
        }
        for seed in 0..20 {
            let hit = cache.get(&key(seed)).expect("hit");
            assert_eq!(hit.strategy, format!("s{seed}"));
        }
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = SolutionCache::new(2, 1);
        cache.insert(key(1), outcome("a"));
        cache.insert(key(2), outcome("b"));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), outcome("c"));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn deadline_and_id_do_not_change_the_key() {
        let chain = amp_core::TaskChain::new(vec![amp_core::Task::new(4, 9, true)]);
        let a = ScheduleRequest::from_chain(
            1,
            &chain,
            amp_core::Resources::new(1, 1),
            Policy::Portfolio,
        );
        let b = ScheduleRequest::from_chain(
            2,
            &chain,
            amp_core::Resources::new(1, 1),
            Policy::Portfolio,
        )
        .with_deadline_us(5);
        assert_eq!(CacheKey::for_request(&a), CacheKey::for_request(&b));
        assert_eq!(
            CacheKey::for_request(&a).fingerprint(),
            CacheKey::for_request(&b).fingerprint()
        );
    }

    #[test]
    fn chain_fingerprint_ignores_the_pool_only() {
        let mut a = key(5);
        let mut b = key(5);
        a.big_cores = 1;
        a.little_cores = 7;
        b.big_cores = 6;
        b.little_cores = 0;
        // Same chain, different pools: full fingerprints differ, the
        // pool-free one does not.
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.chain_fingerprint(), b.chain_fingerprint());
        // Different chains or policies still separate.
        let c = key(6);
        assert_ne!(a.chain_fingerprint(), c.chain_fingerprint());
        let mut d = key(5);
        d.policy = Policy::Strategy("HeRAD".to_string());
        assert_ne!(a.chain_fingerprint(), d.chain_fingerprint());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = SolutionCache::new(0, 4);
        cache.insert(key(1), outcome("a"));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn objective_is_part_of_the_key() {
        let cache = SolutionCache::new(8, 1);
        let k_period = key(4);
        let mut k_energy = key(4);
        k_energy.objective = Objective::MinEnergy {
            target_period: "5/2".to_string(),
        };
        let mut k_energy_other = k_energy.clone();
        k_energy_other.objective = Objective::MinEnergy {
            target_period: "3/1".to_string(),
        };
        // Distinct objectives — and distinct energy targets — never alias.
        assert_ne!(k_period.fingerprint(), k_energy.fingerprint());
        assert_ne!(k_energy.fingerprint(), k_energy_other.fingerprint());
        cache.insert(k_period.clone(), outcome("HeRAD"));
        assert!(
            cache.get(&k_energy).is_none(),
            "a period-optimal entry answered an energy request"
        );
        assert!(cache.get(&k_energy_other).is_none());
        assert!(cache.get(&k_period).is_some());
        // The period objective's fingerprint bytes are unchanged from the
        // pre-energy encoding (snapshot/routing stability): hashing the
        // same material without the field would give the same value.
        assert_eq!(k_period.fingerprint(), {
            let k = key(4);
            k.fingerprint()
        });
    }

    #[test]
    fn policy_is_part_of_the_key() {
        let cache = SolutionCache::new(8, 1);
        let mut k_portfolio = key(4);
        let mut k_fertac = key(4);
        k_portfolio.policy = Policy::Portfolio;
        k_fertac.policy = Policy::Strategy("FERTAC".to_string());
        assert_ne!(k_portfolio.fingerprint(), k_fertac.fingerprint());
        cache.insert(k_portfolio.clone(), outcome("HeRAD"));
        assert!(cache.get(&k_fertac).is_none());
        assert!(cache.get(&k_portfolio).is_some());
    }
}
