//! The scheduling engine: a crossbeam worker pool with bounded queues,
//! explicit backpressure and graceful shutdown.
//!
//! Clients hand the engine a [`ScheduleRequest`] plus a reply channel.
//! Requests enter a *bounded* job queue: [`Engine::try_submit`] rejects
//! with [`ServiceError::Overloaded`] when the queue is full (the caller
//! sees backpressure immediately instead of unbounded memory growth),
//! while [`Engine::submit`] blocks until a slot frees up. Worker threads
//! pop jobs, consult the [`SolutionCache`], run the requested policy —
//! one strategy via [`strategy_by_name`], or the deadline-bounded
//! [`portfolio`](crate::portfolio) — and send exactly one
//! [`ScheduleResponse`] per request on the caller's reply channel.
//!
//! Shutdown is graceful: [`Engine::shutdown`] (or dropping the engine)
//! closes the job queue, lets the workers drain every request already
//! accepted, and joins them. No accepted request is ever dropped without
//! a response.

use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amp_core::sched::{strategy_by_name, SchedScratch};
use amp_core::Solution;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::cache::{CacheKey, CacheStats, SolutionCache};
use crate::error::ServiceError;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::portfolio::{self, PortfolioConfig};
use crate::request::{Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse};

/// Sizing and tuning of an [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` is allowed (jobs queue but never execute) and
    /// only useful in tests probing backpressure.
    pub workers: usize,
    /// Bound of the job queue; beyond it, `try_submit` rejects.
    pub queue_depth: usize,
    /// Total solution-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (lock-contention granularity).
    pub cache_shards: usize,
    /// Portfolio tuning, applied to every `Policy::Portfolio` request.
    pub portfolio: PortfolioConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism().map_or(4, usize::from),
            queue_depth: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            portfolio: PortfolioConfig::default(),
        }
    }
}

/// One queued unit of work.
struct Job {
    request: ScheduleRequest,
    reply: Sender<ScheduleResponse>,
    accepted_at: Instant,
}

/// A running scheduling service.
pub struct Engine {
    job_tx: Option<Sender<Job>>,
    /// Kept so the queue stays connected even with zero workers; workers
    /// hold their own clones.
    _job_rx: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServiceMetrics>,
    cache: Arc<SolutionCache>,
}

impl Engine {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(cfg: EngineConfig) -> Self {
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_depth.max(1));
        let metrics = Arc::new(ServiceMetrics::new());
        let cache = Arc::new(SolutionCache::new(cfg.cache_capacity, cfg.cache_shards));
        let workers = (0..cfg.workers)
            .map(|i| {
                let rx = job_rx.clone();
                let metrics = Arc::clone(&metrics);
                let cache = Arc::clone(&cache);
                let portfolio_cfg = cfg.portfolio;
                thread::Builder::new()
                    .name(format!("amp-service-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &metrics, &cache, &portfolio_cfg))
                    .expect("spawn worker thread")
            })
            .collect();
        Engine {
            job_tx: Some(job_tx),
            _job_rx: job_rx,
            workers,
            metrics,
            cache,
        }
    }

    fn sender(&self) -> &Sender<Job> {
        self.job_tx.as_ref().expect("engine not shut down")
    }

    /// Non-blocking submission. Rejects with
    /// [`ServiceError::Overloaded`] when the job queue is full; the
    /// request is then *not* enqueued and no response will arrive for it.
    pub fn try_submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        let job = Job {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match self.sender().try_send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Blocking submission: waits for a queue slot instead of rejecting.
    pub fn submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        let job = Job {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match self.sender().send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(_) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Convenience for tests and synchronous callers: submits and waits
    /// for the single response. Requires at least one worker.
    #[must_use]
    pub fn schedule_blocking(&self, request: ScheduleRequest) -> ScheduleResponse {
        let id = request.id;
        let (tx, rx) = channel::bounded(1);
        if let Err(e) = self.submit(request, tx) {
            return ScheduleResponse { id, result: Err(e) };
        }
        rx.recv().unwrap_or_else(|_| ScheduleResponse {
            id,
            result: Err(ServiceError::Internal(
                "worker dropped the reply channel".to_string(),
            )),
        })
    }

    /// Point-in-time service metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Point-in-time cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Service metrics and cache counters as one JSON object.
    #[must_use]
    pub fn status_json(&self) -> String {
        let cache = self.cache_stats();
        let metrics = self.metrics().to_json();
        format!(
            "{{\"service\":{metrics},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"insertions\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{:.4}}}}}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.insertions,
            cache.entries,
            cache.capacity,
            cache.hit_rate(),
        )
    }

    /// Closes the queue, drains every accepted request and joins the
    /// workers. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    rx: &Receiver<Job>,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    portfolio_cfg: &PortfolioConfig,
) {
    // One scratch arena per worker, reused across every request the
    // worker ever handles: steady-state scheduling allocates nothing.
    let mut scratch = SchedScratch::new();
    // `recv` keeps returning queued jobs after the engine closes the
    // queue and only errors once it is both closed *and* empty — that is
    // exactly the drain-then-exit shutdown contract.
    while let Ok(job) = rx.recv() {
        let result = handle(&job.request, metrics, cache, portfolio_cfg, &mut scratch);
        let is_error = result.is_err();
        let response = ScheduleResponse {
            id: job.request.id,
            result,
        };
        metrics.record_response(job.accepted_at.elapsed(), is_error);
        // A client that dropped its reply receiver forfeits the answer;
        // that is its choice, not an engine failure.
        let _ = job.reply.send(response);
    }
}

fn handle(
    request: &ScheduleRequest,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    portfolio_cfg: &PortfolioConfig,
    scratch: &mut SchedScratch,
) -> Result<ScheduleOutcome, ServiceError> {
    if request.tasks.is_empty() {
        return Err(ServiceError::EmptyChain);
    }
    if request.big_cores == 0 && request.little_cores == 0 {
        return Err(ServiceError::NoCores);
    }
    let key = CacheKey::for_request(request);
    if let Some(hit) = cache.get(&key) {
        return Ok(hit);
    }
    let chain = request.chain();
    let resources = request.resources();
    let outcome = match &request.policy {
        Policy::Strategy(name) => {
            let strategy = strategy_by_name(name)
                .ok_or_else(|| ServiceError::UnknownStrategy { name: name.clone() })?;
            let mut solution = Solution::empty();
            if !strategy.schedule_into(&chain, resources, scratch, &mut solution) {
                return Err(ServiceError::Infeasible);
            }
            ScheduleOutcome::from_solution(strategy.name(), &solution, &chain, true)
        }
        Policy::Portfolio => {
            // The deadline bounds the compute phase: it starts ticking
            // when a worker dequeues the request, not when the client
            // submitted it (queueing delay is the queue's business and
            // is visible in the latency histogram instead).
            let deadline = request
                .deadline_us
                .map(|us| Instant::now() + Duration::from_micros(us));
            let out = portfolio::run(&chain, resources, deadline, portfolio_cfg, scratch)
                .ok_or(ServiceError::Infeasible)?;
            metrics.record_portfolio(out.complete);
            ScheduleOutcome::from_solution(out.strategy, &out.solution, &chain, out.complete)
        }
    };
    // Only complete outcomes are sound to replay: a deadline-truncated
    // portfolio answer may be improvable, and caching it would pin the
    // worse solution for every later identical request.
    if outcome.complete {
        cache.insert(key, outcome.clone());
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::{Resources, Task, TaskChain};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(40, 95, true),
            Task::new(5, 12, false),
        ])
    }

    fn engine(workers: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            queue_depth: 64,
            cache_capacity: 128,
            cache_shards: 4,
            portfolio: PortfolioConfig::default(),
        })
    }

    #[test]
    fn single_strategy_request_round_trips() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(
            42,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        let resp = e.schedule_blocking(req);
        assert_eq!(resp.id, 42);
        let out = resp.result.expect("feasible");
        assert_eq!(out.strategy, "FERTAC");
        assert!(out.complete);
        assert!(out.solution().validate(&chain()).is_ok());
        e.shutdown();
    }

    #[test]
    fn portfolio_beats_or_matches_fertac_and_caches() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(1, &chain(), Resources::new(2, 2), Policy::Portfolio);
        let first = e.schedule_blocking(req.clone()).result.expect("feasible");
        assert!(!first.cache_hit);
        assert!(first.complete);
        let second = e
            .schedule_blocking(ScheduleRequest { id: 2, ..req })
            .result
            .expect("feasible");
        assert!(second.cache_hit);
        assert_eq!(second.period, first.period);
        assert_eq!(second.decomposition, first.decomposition);
        assert_eq!(second.stages, first.stages);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let e = engine(1);
        let mut req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("NoSuchStrategy".to_string()),
        );
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::UnknownStrategy {
                name: "NoSuchStrategy".to_string()
            }
        );
        req.policy = Policy::Portfolio;
        req.tasks.clear();
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::EmptyChain
        );
        let req = ScheduleRequest::from_chain(2, &chain(), Resources::new(0, 0), Policy::Portfolio);
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::NoCores
        );
        let m = e.metrics();
        assert_eq!(m.errors, 3);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // No workers: accepted jobs stay queued, so the bound is exact.
        let e = Engine::start(EngineConfig {
            workers: 0,
            queue_depth: 2,
            cache_capacity: 0,
            cache_shards: 1,
            portfolio: PortfolioConfig::default(),
        });
        let (tx, _rx) = channel::unbounded();
        let req = ScheduleRequest::from_chain(0, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert_eq!(e.try_submit(req, tx).unwrap_err(), ServiceError::Overloaded);
        let m = e.metrics();
        assert_eq!((m.requests, m.rejected), (2, 1));
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let e = engine(2);
        let (tx, rx) = channel::unbounded();
        for id in 0..32 {
            let req =
                ScheduleRequest::from_chain(id, &chain(), Resources::new(2, 2), Policy::Portfolio);
            e.submit(req, tx.clone()).expect("accepted");
        }
        drop(tx);
        e.shutdown();
        let mut ids: Vec<u64> = rx.iter().map(|r: ScheduleResponse| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
    }
}
