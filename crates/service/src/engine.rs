//! The scheduling engine: a crossbeam worker pool with bounded queues,
//! explicit backpressure, panic isolation and graceful shutdown.
//!
//! Clients hand the engine a [`ScheduleRequest`] plus a reply channel.
//! Requests enter a *bounded* job queue: [`Engine::try_submit`] rejects
//! with [`ServiceError::Overloaded`] when the queue is full (the caller
//! sees backpressure immediately instead of unbounded memory growth),
//! while [`Engine::submit`] blocks until a slot frees up. Worker threads
//! pop jobs, consult the [`SolutionCache`], run the requested policy —
//! one strategy via [`strategy_by_name`], or the deadline-bounded
//! [`portfolio`](crate::portfolio) — and send exactly one
//! [`ScheduleResponse`] per request on the caller's reply channel.
//!
//! ## Robustness contract
//!
//! *No accepted request is ever dropped without a response* — even when
//! the strategy panics. Every request's compute runs under
//! [`catch_unwind`]: a panic becomes a typed
//! [`ServiceError::Internal`] response, is counted in the
//! `worker_panics` metric, and the worker's scratch arena is replaced
//! (a half-written DP table is not trustworthy). Should anything
//! *outside* the per-request guard unwind, a supervision loop catches
//! it and revives the worker loop in place, so the pool never silently
//! shrinks below its configured size (`workers_alive` in the metrics
//! tracks this).
//!
//! Before any cache insert the winning solution is re-validated
//! (structure and resource usage) as defense in depth: an invalid
//! solution — reachable only through fault injection or a genuine
//! scheduler bug — produces an `Internal` error response and is never
//! cached or served.
//!
//! A zero-worker engine (test configurations probing backpressure) can
//! never drain its queue, so the blocking paths refuse instead of
//! deadlocking: [`Engine::submit`] degrades to the non-blocking reject
//! once the queue fills, and [`Engine::schedule_blocking`] returns
//! [`ServiceError::NoWorkers`] immediately.
//!
//! Shutdown is graceful: [`Engine::shutdown`] (or dropping the engine)
//! closes the job queue, lets the workers drain every request already
//! accepted, joins them, and only then tears down the racer pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amp_core::sched::{strategy_by_name, SchedScratch};
use amp_core::Solution;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::cache::{CacheKey, CacheStats, SolutionCache};
use crate::error::ServiceError;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::portfolio::{self, PortfolioConfig};
use crate::racer::{solution_is_sound, RacerPool, StrategyWrap};
use crate::request::{Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse};

/// Sizing and tuning of an [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` is allowed (jobs queue but never execute) and
    /// only useful in tests probing backpressure; the blocking
    /// submission paths then reject instead of deadlocking.
    pub workers: usize,
    /// Racer-pool threads backing the portfolio (see
    /// [`RacerPool`](crate::racer::RacerPool)). `0` degrades every
    /// portfolio request to its inline FERTAC member (reported
    /// incomplete, never cached).
    pub racer_threads: usize,
    /// Bound of the job queue; beyond it, `try_submit` rejects.
    pub queue_depth: usize,
    /// Total solution-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (lock-contention granularity).
    pub cache_shards: usize,
    /// Portfolio tuning, applied to every `Policy::Portfolio` request.
    pub portfolio: PortfolioConfig,
    /// Test-only fault-injection seam: wraps every scheduler the engine
    /// is about to run. Leave `None` in production.
    pub fault_wrap: Option<StrategyWrap>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map_or(4, usize::from);
        EngineConfig {
            workers,
            // Two racers per in-flight portfolio request; sized so every
            // worker can have both of its racers running at once.
            racer_threads: workers * 2,
            queue_depth: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            portfolio: PortfolioConfig::default(),
            fault_wrap: None,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("racer_threads", &self.racer_threads)
            .field("queue_depth", &self.queue_depth)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("portfolio", &self.portfolio)
            .field("fault_wrap", &self.fault_wrap.is_some())
            .finish()
    }
}

/// One queued unit of work.
struct Job {
    request: ScheduleRequest,
    reply: Sender<ScheduleResponse>,
    accepted_at: Instant,
}

/// A running scheduling service.
pub struct Engine {
    job_tx: Option<Sender<Job>>,
    /// Kept so the queue stays connected even with zero workers; workers
    /// hold their own clones.
    _job_rx: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    configured_workers: usize,
    metrics: Arc<ServiceMetrics>,
    cache: Arc<SolutionCache>,
    racers: Arc<RacerPool>,
}

impl Engine {
    /// Starts the worker pool and the portfolio racer pool.
    #[must_use]
    pub fn start(cfg: EngineConfig) -> Self {
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_depth.max(1));
        let metrics = Arc::new(ServiceMetrics::new());
        let cache = Arc::new(SolutionCache::new(cfg.cache_capacity, cfg.cache_shards));
        let racers = Arc::new(RacerPool::new(cfg.racer_threads, cfg.fault_wrap.clone()));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
            .filter_map(|i| {
                let rx = job_rx.clone();
                let worker_metrics = Arc::clone(&metrics);
                let cache = Arc::clone(&cache);
                let racers = Arc::clone(&racers);
                let portfolio_cfg = cfg.portfolio;
                let spawned = thread::Builder::new()
                    .name(format!("amp-service-worker-{i}"))
                    .spawn(move || {
                        supervised_worker(&rx, &worker_metrics, &cache, &portfolio_cfg, &racers);
                    });
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(_) => {
                        // Same degradation policy as the racer pool: a
                        // spawn failure shrinks the pool instead of
                        // unwinding the constructor.
                        metrics.record_spawn_failure();
                        None
                    }
                }
            })
            .collect();
        metrics.record_threads_spawned(workers.len() as u64 + racers.stats().threads_spawned);
        Engine {
            job_tx: Some(job_tx),
            _job_rx: job_rx,
            configured_workers: workers.len(),
            workers,
            metrics,
            cache,
            racers,
        }
    }

    fn sender(&self) -> &Sender<Job> {
        self.job_tx.as_ref().expect("engine not shut down")
    }

    /// Non-blocking submission. Rejects with
    /// [`ServiceError::Overloaded`] when the job queue is full; the
    /// request is then *not* enqueued and no response will arrive for it.
    pub fn try_submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        let job = Job {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match self.sender().try_send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Blocking submission: waits for a queue slot instead of rejecting.
    ///
    /// On a zero-worker engine no slot can ever free up, so once the
    /// queue is full this degrades to the non-blocking path and returns
    /// [`ServiceError::Overloaded`] instead of deadlocking.
    pub fn submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        if self.configured_workers == 0 {
            return self.try_submit(request, reply);
        }
        let job = Job {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match self.sender().send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(_) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Convenience for tests and synchronous callers: submits and waits
    /// for the single response. On a zero-worker engine the wait could
    /// never end, so it returns [`ServiceError::NoWorkers`] immediately.
    #[must_use]
    pub fn schedule_blocking(&self, request: ScheduleRequest) -> ScheduleResponse {
        let id = request.id;
        if self.configured_workers == 0 {
            return ScheduleResponse {
                id,
                result: Err(ServiceError::NoWorkers),
            };
        }
        let (tx, rx) = channel::bounded(1);
        if let Err(e) = self.submit(request, tx) {
            return ScheduleResponse { id, result: Err(e) };
        }
        rx.recv().unwrap_or_else(|_| ScheduleResponse {
            id,
            result: Err(ServiceError::Internal(
                "worker dropped the reply channel".to_string(),
            )),
        })
    }

    /// Point-in-time service metrics, including the racer-pool counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let racers = self.racers.stats();
        snap.racer_panics = racers.panics;
        snap.racer_invalid = racers.invalid;
        snap.racer_cancelled = racers.cancelled;
        snap.spawn_failures += racers.spawn_failures;
        snap
    }

    /// Point-in-time cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Service metrics and cache counters as one JSON object.
    #[must_use]
    pub fn status_json(&self) -> String {
        let cache = self.cache_stats();
        let metrics = self.metrics().to_json();
        format!(
            "{{\"service\":{metrics},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"insertions\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{:.4}}}}}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.insertions,
            cache.entries,
            cache.capacity,
            cache.hit_rate(),
        )
    }

    /// Closes the queue, drains every accepted request and joins the
    /// workers. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The racer pool (shared via Arc) tears itself down when the
        // last reference drops — after the workers, by construction.
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The supervision shell around [`worker_loop`]: any unwind that escapes
/// the per-request guard is caught here and the loop revived in place,
/// so the pool's thread count never decays. A clean return (queue closed
/// and drained) exits for real.
fn supervised_worker(
    rx: &Receiver<Job>,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
) {
    metrics.record_worker_started();
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(rx, metrics, cache, portfolio_cfg, racers);
        }));
        match run {
            Ok(()) => break,
            Err(_) => metrics.record_worker_panic(),
        }
    }
    metrics.record_worker_stopped();
}

fn worker_loop(
    rx: &Receiver<Job>,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
) {
    // One scratch arena per worker, reused across every request the
    // worker ever handles: steady-state scheduling allocates nothing.
    let mut scratch = SchedScratch::new();
    // `recv` keeps returning queued jobs after the engine closes the
    // queue and only errors once it is both closed *and* empty — that is
    // exactly the drain-then-exit shutdown contract.
    while let Ok(job) = rx.recv() {
        // Panic isolation: an unwinding strategy (or any compute-path
        // bug) still yields exactly one typed response for the request.
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle(
                &job.request,
                metrics,
                cache,
                portfolio_cfg,
                racers,
                &mut scratch,
            )
        }))
        .unwrap_or_else(|panic| {
            metrics.record_worker_panic();
            // The interrupted solve may have left the arena mid-write;
            // recycle it rather than trust it.
            scratch = SchedScratch::new();
            Err(ServiceError::Internal(format!(
                "worker panicked while scheduling: {}",
                panic_message(panic.as_ref())
            )))
        });
        let is_error = result.is_err();
        let response = ScheduleResponse {
            id: job.request.id,
            result,
        };
        metrics.record_response(job.accepted_at.elapsed(), is_error);
        // A client that dropped its reply receiver forfeits the answer;
        // that is its choice, not an engine failure.
        let _ = job.reply.send(response);
    }
}

fn handle(
    request: &ScheduleRequest,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
    scratch: &mut SchedScratch,
) -> Result<ScheduleOutcome, ServiceError> {
    if request.tasks.is_empty() {
        return Err(ServiceError::EmptyChain);
    }
    if request.big_cores == 0 && request.little_cores == 0 {
        return Err(ServiceError::NoCores);
    }
    let key = CacheKey::for_request(request);
    if let Some(hit) = cache.get(&key) {
        return Ok(hit);
    }
    let chain = request.chain();
    let resources = request.resources();
    // Defense in depth before anything is served or cached: re-validate
    // the winning stages against the chain and the pool. An invalid
    // solution here means a scheduler bug (or an injected fault) — fail
    // loudly instead of persisting garbage. The vet runs on the raw
    // solution, before any outcome derivation touches the chain with
    // possibly out-of-range stage indices.
    let vet = |strategy: &str, solution: &Solution| -> Result<(), ServiceError> {
        if solution_is_sound(solution, &chain, resources) {
            Ok(())
        } else {
            metrics.record_invalid_solution();
            Err(ServiceError::Internal(format!(
                "strategy {strategy} produced an invalid solution; refusing to serve or cache it"
            )))
        }
    };
    let outcome = match &request.policy {
        Policy::Strategy(name) => {
            let strategy = strategy_by_name(name)
                .ok_or_else(|| ServiceError::UnknownStrategy { name: name.clone() })?;
            let strategy = racers.wrapped(strategy);
            let mut solution = Solution::empty();
            if !strategy.schedule_into(&chain, resources, scratch, &mut solution) {
                return Err(ServiceError::Infeasible);
            }
            vet(strategy.name(), &solution)?;
            ScheduleOutcome::from_solution(strategy.name(), &solution, &chain, true)
        }
        Policy::Portfolio => {
            // The deadline bounds the compute phase: it starts ticking
            // when a worker dequeues the request, not when the client
            // submitted it (queueing delay is the queue's business and
            // is visible in the latency histogram instead).
            let deadline = request
                .deadline_us
                .map(|us| Instant::now() + Duration::from_micros(us));
            let out = portfolio::run(&chain, resources, deadline, portfolio_cfg, scratch, racers)
                .ok_or(ServiceError::Infeasible)?;
            metrics.record_portfolio(out.complete);
            vet(out.strategy, &out.solution)?;
            ScheduleOutcome::from_solution(out.strategy, &out.solution, &chain, out.complete)
        }
    };
    // Only complete outcomes are sound to replay: a deadline-truncated
    // (or racer-failure-truncated) portfolio answer may be improvable,
    // and caching it would pin the worse solution for every later
    // identical request.
    if outcome.complete {
        cache.insert(key, outcome.clone());
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::Scheduler;
    use amp_core::{Resources, Task, TaskChain};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(40, 95, true),
            Task::new(5, 12, false),
        ])
    }

    fn engine(workers: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            racer_threads: 2,
            queue_depth: 64,
            cache_capacity: 128,
            cache_shards: 4,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn single_strategy_request_round_trips() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(
            42,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        let resp = e.schedule_blocking(req);
        assert_eq!(resp.id, 42);
        let out = resp.result.expect("feasible");
        assert_eq!(out.strategy, "FERTAC");
        assert!(out.complete);
        assert!(out.solution().validate(&chain()).is_ok());
        e.shutdown();
    }

    #[test]
    fn portfolio_beats_or_matches_fertac_and_caches() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(1, &chain(), Resources::new(2, 2), Policy::Portfolio);
        let first = e.schedule_blocking(req.clone()).result.expect("feasible");
        assert!(!first.cache_hit);
        assert!(first.complete);
        let second = e
            .schedule_blocking(ScheduleRequest { id: 2, ..req })
            .result
            .expect("feasible");
        assert!(second.cache_hit);
        assert_eq!(second.period, first.period);
        assert_eq!(second.decomposition, first.decomposition);
        assert_eq!(second.stages, first.stages);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let e = engine(1);
        let mut req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("NoSuchStrategy".to_string()),
        );
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::UnknownStrategy {
                name: "NoSuchStrategy".to_string()
            }
        );
        req.policy = Policy::Portfolio;
        req.tasks.clear();
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::EmptyChain
        );
        let req = ScheduleRequest::from_chain(2, &chain(), Resources::new(0, 0), Policy::Portfolio);
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::NoCores
        );
        let m = e.metrics();
        assert_eq!(m.errors, 3);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // No workers: accepted jobs stay queued, so the bound is exact.
        let e = Engine::start(EngineConfig {
            workers: 0,
            racer_threads: 0,
            queue_depth: 2,
            cache_capacity: 0,
            cache_shards: 1,
            ..EngineConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        let req = ScheduleRequest::from_chain(0, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert_eq!(e.try_submit(req, tx).unwrap_err(), ServiceError::Overloaded);
        let m = e.metrics();
        assert_eq!((m.requests, m.rejected), (2, 1));
    }

    /// Regression: `submit` on a zero-worker engine used to block forever
    /// once the queue filled; it now rejects with `Overloaded`, and
    /// `schedule_blocking` refuses up front with `NoWorkers`.
    #[test]
    fn zero_worker_engine_rejects_instead_of_deadlocking() {
        let e = Engine::start(EngineConfig {
            workers: 0,
            racer_threads: 0,
            queue_depth: 2,
            cache_capacity: 0,
            cache_shards: 1,
            ..EngineConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        let req = ScheduleRequest::from_chain(0, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert!(e.submit(req.clone(), tx.clone()).is_ok());
        assert!(e.submit(req.clone(), tx.clone()).is_ok());
        // Queue full: a blocking submit would previously never return.
        assert_eq!(
            e.submit(req.clone(), tx).unwrap_err(),
            ServiceError::Overloaded
        );
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::NoWorkers
        );
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let e = engine(2);
        let (tx, rx) = channel::unbounded();
        for id in 0..32 {
            let req =
                ScheduleRequest::from_chain(id, &chain(), Resources::new(2, 2), Policy::Portfolio);
            e.submit(req, tx.clone()).expect("accepted");
        }
        drop(tx);
        e.shutdown();
        let mut ids: Vec<u64> = rx.iter().map(|r: ScheduleResponse| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
    }

    /// A panic injected into the compute path still yields exactly one
    /// typed `Internal` response, the panic is counted, and the worker
    /// keeps serving afterwards.
    #[test]
    fn injected_panic_yields_one_internal_response_and_worker_survives() {
        struct Bomb {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("injected fault");
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "FERTAC" {
                Box::new(Bomb { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 2,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(
            9,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        let resp = e.schedule_blocking(req);
        assert_eq!(resp.id, 9);
        match resp.result {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
        // The same (sole) worker answers the next request: not dead.
        let ok = e.schedule_blocking(ScheduleRequest::from_chain(
            10,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        ));
        assert!(ok.result.is_ok());
        let m = e.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.workers_alive, 1);
        assert_eq!(m.responses, 2);
    }

    /// The acceptance-criteria regression: a portfolio whose racer dies
    /// reports `complete == false` and the outcome is NOT cached — a
    /// resubmission recomputes instead of replaying.
    #[test]
    fn dead_racer_outcome_is_incomplete_and_uncached() {
        struct Bomb {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("racer killed");
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "HeRAD" {
                Box::new(Bomb { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 2,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(1, &chain(), Resources::new(2, 2), Policy::Portfolio);
        let first = e.schedule_blocking(req.clone()).result.expect("feasible");
        assert!(!first.complete, "dead racer must clear complete");
        let second = e
            .schedule_blocking(ScheduleRequest { id: 2, ..req })
            .result
            .expect("feasible");
        assert!(!second.cache_hit, "incomplete outcomes must not be cached");
        let m = e.metrics();
        assert_eq!(m.racer_panics, 2, "one per (uncached) submission");
        assert_eq!(m.portfolio_truncated, 2);
        assert_eq!(m.portfolio_complete, 0);
        assert_eq!(e.cache_stats().insertions, 0);
    }

    /// Defense in depth: an injected invalid solution on the
    /// single-strategy path becomes a typed `Internal` error and never
    /// reaches the cache.
    #[test]
    fn invalid_solution_is_refused_and_never_cached() {
        struct Liar {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Liar {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                chain: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                out: &mut Solution,
            ) -> bool {
                *out = Solution::new(vec![amp_core::Stage::new(
                    0,
                    chain.len(),
                    1,
                    amp_core::CoreType::Big,
                )]);
                true
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "FERTAC" {
                Box::new(Liar { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 0,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        match e.schedule_blocking(req).result {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("invalid"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
        assert_eq!(e.cache_stats().insertions, 0);
        assert_eq!(e.metrics().invalid_solutions, 1);
    }
}
