//! The scheduling engine: a crossbeam worker pool with bounded queues,
//! explicit backpressure, panic isolation and graceful shutdown.
//!
//! Clients hand the engine a [`ScheduleRequest`] plus a reply channel.
//! Requests enter a *bounded* job queue: [`Engine::try_submit`] rejects
//! with [`ServiceError::Overloaded`] when the queue is full (the caller
//! sees backpressure immediately instead of unbounded memory growth),
//! while [`Engine::submit`] blocks until a slot frees up. Worker threads
//! pop jobs, consult the [`SolutionCache`], run the requested policy —
//! one strategy via [`strategy_by_name`], or the deadline-bounded
//! [`portfolio`](crate::portfolio) — and send exactly one
//! [`ScheduleResponse`] per request on the caller's reply channel.
//!
//! Pipelined front ends (the `amp-net` socket server) hand over whole
//! bursts at once: [`Engine::try_submit_batch`] enqueues many requests
//! as *one* queue slot, and the worker that dequeues the batch fans the
//! cache-missing single-strategy members into
//! [`schedule_many_with`](amp_core::sched::batch::schedule_many_with)
//! so one hand-off amortizes the queue round-trip and the solves share
//! warm per-worker scratches. Batch members still get exactly one
//! response each, in no guaranteed order — responses carry the request
//! id precisely so ordering never matters.
//!
//! ## Robustness contract
//!
//! *No accepted request is ever dropped without a response* — even when
//! the strategy panics. Every request's compute runs under
//! [`catch_unwind`]: a panic becomes a typed
//! [`ServiceError::Internal`] response, is counted in the
//! `worker_panics` metric, and the worker's scratch arena is replaced
//! (a half-written DP table is not trustworthy). Should anything
//! *outside* the per-request guard unwind, a supervision loop catches
//! it and revives the worker loop in place, so the pool never silently
//! shrinks below its configured size (`workers_alive` in the metrics
//! tracks this).
//!
//! Before any cache insert the winning solution is re-validated
//! (structure and resource usage) as defense in depth: an invalid
//! solution — reachable only through fault injection or a genuine
//! scheduler bug — produces an `Internal` error response and is never
//! cached or served.
//!
//! A zero-worker engine (test configurations probing backpressure) can
//! never drain its queue, so the blocking paths refuse instead of
//! deadlocking: [`Engine::submit`] degrades to the non-blocking reject
//! once the queue fills, and [`Engine::schedule_blocking`] returns
//! [`ServiceError::NoWorkers`] immediately.
//!
//! Shutdown is graceful *and shared-owner safe*: [`Engine::close`]
//! stops admissions through a plain `&self` (so an `Arc<Engine>` held
//! by many connection threads can initiate shutdown), [`Engine::drain`]
//! additionally waits until every accepted request has been answered
//! and the workers have exited, and [`Engine::shutdown`] / `Drop` are
//! thin wrappers over `drain`. A submission racing with `close` either
//! returns [`ServiceError::ShuttingDown`] or wins the race — and a
//! winning submission is still served, because the submitter holds its
//! own clone of the queue sender until the enqueue completes, so the
//! workers cannot observe "closed and empty" while the job is in
//! flight. There is no window in which a request is accepted (`Ok`
//! returned to the caller) but never answered.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amp_core::sched::batch::schedule_many_with;
use amp_core::sched::{
    energy_strategy_by_name, strategy_by_name, EnergyDp, EnergyFertac, EnergyScheduler,
    EnergyTwocatac, SchedScratch,
};
use amp_core::{MilliPower, Ratio, Resources, Solution, TaskChain};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use crate::cache::{CacheKey, CacheStats, SolutionCache};
use crate::chain_tier::{ChainTier, ChainTierStats, SnapshotError, TierFaultHook};
use crate::error::ServiceError;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::portfolio::{self, PortfolioConfig};
use crate::racer::{solution_is_sound, RacerPool, StrategyWrap};
use crate::request::{Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse};

/// Sizing and tuning of an [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` is allowed (jobs queue but never execute) and
    /// only useful in tests probing backpressure; the blocking
    /// submission paths then reject instead of deadlocking.
    pub workers: usize,
    /// Racer-pool threads backing the portfolio (see
    /// [`RacerPool`](crate::racer::RacerPool)). `0` degrades every
    /// portfolio request to its inline FERTAC member (reported
    /// incomplete, never cached).
    pub racer_threads: usize,
    /// Bound of the job queue; beyond it, `try_submit` rejects.
    pub queue_depth: usize,
    /// Total solution-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards (lock-contention granularity).
    pub cache_shards: usize,
    /// Portfolio tuning, applied to every `Policy::Portfolio` request.
    pub portfolio: PortfolioConfig,
    /// Chain-tier capacity: how many distinct chains keep their solved
    /// HeRAD DP table resident for solve-once serving across pool shapes
    /// (see [`ChainTier`]). `0` disables the tier.
    pub chain_capacity: usize,
    /// Chain-tier snapshot file for warm restarts: loaded on start (a
    /// bad file is counted and ignored — the tier starts empty), saved
    /// via [`Engine::save_tier_snapshot`]. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Test-only fault-injection seam: wraps every scheduler the engine
    /// is about to run. Leave `None` in production.
    pub fault_wrap: Option<StrategyWrap>,
    /// Test-only fault-injection seam for the chain tier (panics at
    /// extraction/growth/cold-solve/snapshot sites). Leave `None` in
    /// production.
    pub tier_fault: Option<TierFaultHook>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map_or(4, usize::from);
        EngineConfig {
            workers,
            // Two racers per in-flight portfolio request; sized so every
            // worker can have both of its racers running at once.
            racer_threads: workers * 2,
            queue_depth: 1024,
            cache_capacity: 4096,
            cache_shards: 16,
            portfolio: PortfolioConfig::default(),
            chain_capacity: 64,
            snapshot_path: None,
            fault_wrap: None,
            tier_fault: None,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("racer_threads", &self.racer_threads)
            .field("queue_depth", &self.queue_depth)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("portfolio", &self.portfolio)
            .field("chain_capacity", &self.chain_capacity)
            .field("snapshot_path", &self.snapshot_path)
            .field("fault_wrap", &self.fault_wrap.is_some())
            .field("tier_fault", &self.tier_fault.is_some())
            .finish()
    }
}

/// One queued unit of work: a single request, or a pipelined burst that
/// travels as one queue slot.
enum Job {
    Single {
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
        accepted_at: Instant,
    },
    Batch {
        requests: Vec<ScheduleRequest>,
        reply: Sender<ScheduleResponse>,
        accepted_at: Instant,
    },
}

impl Job {
    /// Recovers the members of a batch job bounced back by the channel.
    fn into_batch_requests(self) -> Vec<ScheduleRequest> {
        match self {
            Job::Batch { requests, .. } => requests,
            Job::Single { request, .. } => vec![request],
        }
    }
}

/// A batch bounced at the door: no member was enqueued, no response
/// will arrive for any of them, and all of them come back to the caller
/// paired with the typed error each is owed.
#[derive(Debug)]
pub struct RejectedBatch {
    /// The members, in submission order.
    pub requests: Vec<ScheduleRequest>,
    /// Why the batch was refused ([`ServiceError::Overloaded`] or
    /// [`ServiceError::ShuttingDown`]).
    pub error: ServiceError,
}

/// A running scheduling service.
pub struct Engine {
    /// `None` once closed. Behind a mutex so [`Engine::close`] works
    /// through `&self` (shared `Arc<Engine>` owners can shut down);
    /// submitters clone the sender out and enqueue outside the lock, so
    /// a racing close never blocks on a full queue and a winning
    /// submission keeps the channel alive until its enqueue lands.
    job_tx: Mutex<Option<Sender<Job>>>,
    /// Kept so the queue stays connected even with zero workers; workers
    /// hold their own clones.
    _job_rx: Receiver<Job>,
    /// Behind a mutex so [`Engine::drain`] can join through `&self`;
    /// the guard is held across the joins so concurrent drains both
    /// return only after the pool has fully exited.
    workers: Mutex<Vec<JoinHandle<()>>>,
    configured_workers: usize,
    metrics: Arc<ServiceMetrics>,
    cache: Arc<SolutionCache>,
    tier: Arc<ChainTier>,
    racers: Arc<RacerPool>,
}

impl Engine {
    /// Starts the worker pool and the portfolio racer pool. When the
    /// config names a snapshot path, the chain tier warm-restarts from it
    /// first; a missing or invalid snapshot is counted
    /// (`snapshot_rejected`) and the tier starts empty — start never
    /// fails on snapshot problems.
    #[must_use]
    pub fn start(cfg: EngineConfig) -> Self {
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_depth.max(1));
        let metrics = Arc::new(ServiceMetrics::new());
        let cache = Arc::new(SolutionCache::new(cfg.cache_capacity, cfg.cache_shards));
        let tier = Arc::new(ChainTier::new(cfg.chain_capacity, cfg.tier_fault.clone()));
        if let Some(path) = &cfg.snapshot_path {
            // Typed rejection only: the error is visible in the tier's
            // snapshot_rejected counter, and an empty tier is always safe.
            let _ = tier.load_from(path);
        }
        let racers = Arc::new(RacerPool::new(cfg.racer_threads, cfg.fault_wrap.clone()));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
            .filter_map(|i| {
                let rx = job_rx.clone();
                let worker_metrics = Arc::clone(&metrics);
                let cache = Arc::clone(&cache);
                let tier = Arc::clone(&tier);
                let racers = Arc::clone(&racers);
                let portfolio_cfg = cfg.portfolio;
                let spawned = thread::Builder::new()
                    .name(format!("amp-service-worker-{i}"))
                    .spawn(move || {
                        supervised_worker(
                            &rx,
                            &worker_metrics,
                            &cache,
                            &tier,
                            &portfolio_cfg,
                            &racers,
                        );
                    });
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(_) => {
                        // Same degradation policy as the racer pool: a
                        // spawn failure shrinks the pool instead of
                        // unwinding the constructor.
                        metrics.record_spawn_failure();
                        None
                    }
                }
            })
            .collect();
        metrics.record_threads_spawned(workers.len() as u64 + racers.stats().threads_spawned);
        Engine {
            job_tx: Mutex::new(Some(job_tx)),
            _job_rx: job_rx,
            configured_workers: workers.len(),
            workers: Mutex::new(workers),
            metrics,
            cache,
            tier,
            racers,
        }
    }

    /// A private clone of the queue sender, or `None` once closed. The
    /// clone is taken under the lock but used outside it: it keeps the
    /// channel connected for the duration of the enqueue even if
    /// [`Engine::close`] drops the primary sender concurrently, which is
    /// what guarantees an accepted job is always drained.
    fn sender(&self) -> Option<Sender<Job>> {
        self.job_tx.lock().clone()
    }

    /// Non-blocking submission. Rejects with
    /// [`ServiceError::Overloaded`] when the job queue is full; the
    /// request is then *not* enqueued and no response will arrive for it.
    /// After [`Engine::close`] it rejects with
    /// [`ServiceError::ShuttingDown`].
    pub fn try_submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        let Some(tx) = self.sender() else {
            return Err(ServiceError::ShuttingDown);
        };
        let job = Job::Single {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Non-blocking submission of a pipelined burst as one queue slot.
    ///
    /// All-or-nothing: on `Ok(n)` every request will receive exactly one
    /// response on `reply` (in no guaranteed order — match by id); on
    /// rejection *none* was enqueued and every member travels back in
    /// the [`RejectedBatch`], so the caller can answer each one with the
    /// typed error. Cache-missing members that share a strategy are
    /// solved together via the batched scheduler kernel. An empty batch
    /// is a no-op.
    pub fn try_submit_batch(
        &self,
        requests: Vec<ScheduleRequest>,
        reply: Sender<ScheduleResponse>,
    ) -> Result<usize, RejectedBatch> {
        let n = requests.len();
        if n == 0 {
            return Ok(0);
        }
        let Some(tx) = self.sender() else {
            return Err(RejectedBatch {
                requests,
                error: ServiceError::ShuttingDown,
            });
        };
        let job = Job::Batch {
            requests,
            reply,
            accepted_at: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.record_accepted_n(n as u64);
                Ok(n)
            }
            Err(TrySendError::Full(job)) => {
                self.metrics.record_rejected_n(n as u64);
                Err(RejectedBatch {
                    requests: job.into_batch_requests(),
                    error: ServiceError::Overloaded,
                })
            }
            Err(TrySendError::Disconnected(job)) => Err(RejectedBatch {
                requests: job.into_batch_requests(),
                error: ServiceError::ShuttingDown,
            }),
        }
    }

    /// Blocking submission: waits for a queue slot instead of rejecting.
    ///
    /// On a zero-worker engine no slot can ever free up, so once the
    /// queue is full this degrades to the non-blocking path and returns
    /// [`ServiceError::Overloaded`] instead of deadlocking.
    pub fn submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        if self.configured_workers == 0 {
            return self.try_submit(request, reply);
        }
        let Some(tx) = self.sender() else {
            return Err(ServiceError::ShuttingDown);
        };
        let job = Job::Single {
            request,
            reply,
            accepted_at: Instant::now(),
        };
        match tx.send(job) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(())
            }
            Err(_) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Convenience for tests and synchronous callers: submits and waits
    /// for the single response. On a zero-worker engine the wait could
    /// never end, so it returns [`ServiceError::NoWorkers`] immediately.
    #[must_use]
    pub fn schedule_blocking(&self, request: ScheduleRequest) -> ScheduleResponse {
        let id = request.id;
        if self.configured_workers == 0 {
            return ScheduleResponse {
                id,
                result: Err(ServiceError::NoWorkers),
            };
        }
        let (tx, rx) = channel::bounded(1);
        if let Err(e) = self.submit(request, tx) {
            return ScheduleResponse { id, result: Err(e) };
        }
        rx.recv().unwrap_or_else(|_| ScheduleResponse {
            id,
            result: Err(ServiceError::Internal(
                "worker dropped the reply channel".to_string(),
            )),
        })
    }

    /// Point-in-time service metrics, including the racer-pool counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let racers = self.racers.stats();
        snap.racer_panics = racers.panics;
        snap.racer_invalid = racers.invalid;
        snap.racer_cancelled = racers.cancelled;
        snap.spawn_failures += racers.spawn_failures;
        snap
    }

    /// Point-in-time cache counters (the exact-fingerprint LRU tier).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Point-in-time chain-tier counters (the solve-once tier).
    #[must_use]
    pub fn tier_stats(&self) -> ChainTierStats {
        self.tier.stats()
    }

    /// The chain tier itself — the shard router merges tier snapshots
    /// across engines through this.
    pub(crate) fn tier(&self) -> &ChainTier {
        &self.tier
    }

    /// Saves the chain tier's tables to `path` (atomic write). Returns
    /// how many tables were written.
    pub fn save_tier_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.tier.save_to(path)
    }

    /// Restores chain-tier tables from a snapshot file; a bad file is a
    /// typed error and changes nothing. Returns how many tables loaded.
    pub fn load_tier_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        self.tier.load_from(path)
    }

    /// Service metrics and cache counters as one JSON object, with the
    /// exact-fingerprint LRU (`"cache"`) and the chain tier
    /// (`"chain_cache"`) reported *separately* — each with its own
    /// integer per-mille hit rate, so dashboards and smoke gates can tell
    /// replay hits from solve-once extraction hits. Per-mille keeps the
    /// status document inside the canonical JSON format, which has no
    /// floats.
    #[must_use]
    pub fn status_json(&self) -> String {
        let cache = self.cache_stats();
        let metrics = self.metrics().to_json();
        format!(
            "{{\"service\":{metrics},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"insertions\":{},\"entries\":{},\"capacity\":{},\"hit_rate_milli\":{}}},\
             \"chain_cache\":{}}}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.insertions,
            cache.entries,
            cache.capacity,
            (cache.hit_rate() * 1000.0).round() as u64,
            chain_cache_json(&self.tier_stats()),
        )
    }

    /// Closes the job queue through a shared reference: later
    /// submissions fail with [`ServiceError::ShuttingDown`], while every
    /// already-accepted request still drains to a response. Idempotent.
    ///
    /// This is the admission-stop half of shutdown, callable from any
    /// thread holding an `Arc<Engine>` (the socket front end closes
    /// admissions first, then drains connections, then calls
    /// [`Engine::drain`]).
    pub fn close(&self) {
        drop(self.job_tx.lock().take());
    }

    /// True once [`Engine::close`] (or shutdown/drop) has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.job_tx.lock().is_none()
    }

    /// Closes the queue, waits for the workers to drain every accepted
    /// request, and joins them — all through `&self`, so shared owners
    /// can run a full graceful shutdown. Concurrent callers all block
    /// until the pool has fully exited. Idempotent.
    pub fn drain(&self) {
        self.close();
        let mut workers = self.workers.lock();
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
        // The racer pool (shared via Arc) tears itself down when the
        // last reference drops — after the workers, by construction.
    }

    /// Closes the queue, drains every accepted request and joins the
    /// workers. Dropping the engine does the same.
    pub fn shutdown(self) {
        self.drain();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Renders one tier's counters as the `"chain_cache"` JSON fragment
/// (shared by [`Engine::status_json`] and the shard aggregate).
pub(crate) fn chain_cache_json(stats: &ChainTierStats) -> String {
    format!(
        "{{\"hits\":{},\"grows\":{},\"cold_solves\":{},\"repairs\":{},\"evictions\":{},\
         \"entries\":{},\"capacity\":{},\"snapshot_loaded\":{},\"snapshot_rejected\":{},\
         \"hit_rate_milli\":{}}}",
        stats.hits,
        stats.grows,
        stats.cold_solves,
        stats.repairs,
        stats.evictions,
        stats.entries,
        stats.capacity,
        stats.snapshot_loaded,
        stats.snapshot_rejected,
        stats.hit_rate_milli(),
    )
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The supervision shell around [`worker_loop`]: any unwind that escapes
/// the per-request guard is caught here and the loop revived in place,
/// so the pool's thread count never decays. A clean return (queue closed
/// and drained) exits for real.
fn supervised_worker(
    rx: &Receiver<Job>,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    tier: &ChainTier,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
) {
    metrics.record_worker_started();
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(rx, metrics, cache, tier, portfolio_cfg, racers);
        }));
        match run {
            Ok(()) => break,
            Err(_) => metrics.record_worker_panic(),
        }
    }
    metrics.record_worker_stopped();
}

/// Intra-batch parallelism cap: how many scoped solver threads one
/// engine worker may fan a batch across. Small on purpose — the engine
/// already runs one worker per core; batching mostly amortizes queue
/// hand-offs, and a modest fan-out picks up the slack on bursty loads
/// without oversubscribing the machine.
const BATCH_FANOUT: usize = 4;

fn worker_loop(
    rx: &Receiver<Job>,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    tier: &ChainTier,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
) {
    // One scratch arena per worker, reused across every request the
    // worker ever handles: steady-state scheduling allocates nothing.
    let mut scratch = SchedScratch::new();
    // Extra scratches for batched jobs, grown on demand up to
    // `BATCH_FANOUT` and likewise reused across batches.
    let mut batch_scratches: Vec<SchedScratch> = Vec::new();
    // `recv` keeps returning queued jobs after the engine closes the
    // queue and only errors once it is both closed *and* empty — that is
    // exactly the drain-then-exit shutdown contract.
    while let Ok(job) = rx.recv() {
        match job {
            Job::Single {
                request,
                reply,
                accepted_at,
            } => {
                let result = compute_guarded(
                    &request,
                    metrics,
                    cache,
                    tier,
                    portfolio_cfg,
                    racers,
                    &mut scratch,
                );
                respond(&reply, request.id, result, accepted_at, metrics);
            }
            Job::Batch {
                requests,
                reply,
                accepted_at,
            } => run_batch(
                requests,
                &reply,
                accepted_at,
                metrics,
                cache,
                tier,
                portfolio_cfg,
                racers,
                &mut scratch,
                &mut batch_scratches,
            ),
        }
    }
}

/// Runs one request's compute under panic isolation: an unwinding
/// strategy (or any compute-path bug) still yields exactly one typed
/// result, and the possibly half-written scratch is recycled.
#[allow(clippy::too_many_arguments)]
fn compute_guarded(
    request: &ScheduleRequest,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    tier: &ChainTier,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
    scratch: &mut SchedScratch,
) -> Result<ScheduleOutcome, ServiceError> {
    catch_unwind(AssertUnwindSafe(|| {
        handle(
            request,
            metrics,
            cache,
            tier,
            portfolio_cfg,
            racers,
            scratch,
        )
    }))
    .unwrap_or_else(|panic| {
        metrics.record_worker_panic();
        // The interrupted solve may have left the arena mid-write;
        // recycle it rather than trust it.
        *scratch = SchedScratch::new();
        Err(ServiceError::Internal(format!(
            "worker panicked while scheduling: {}",
            panic_message(panic.as_ref())
        )))
    })
}

/// Records and delivers one response. A client that dropped its reply
/// receiver forfeits the answer; that is its choice, not an engine
/// failure.
fn respond(
    reply: &Sender<ScheduleResponse>,
    id: u64,
    result: Result<ScheduleOutcome, ServiceError>,
    accepted_at: Instant,
    metrics: &ServiceMetrics,
) {
    let is_error = result.is_err();
    metrics.record_response(accepted_at.elapsed(), is_error);
    let _ = reply.send(ScheduleResponse { id, result });
}

/// Serves a pipelined batch: validation errors and cache hits answer
/// immediately, portfolio members run through the regular single-request
/// path, and cache-missing members that share a (known) strategy are
/// solved together through the batched scheduler kernel on the worker's
/// persistent scratch pool. Exactly one response per member, always.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    requests: Vec<ScheduleRequest>,
    reply: &Sender<ScheduleResponse>,
    accepted_at: Instant,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    tier: &ChainTier,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
    scratch: &mut SchedScratch,
    batch_scratches: &mut Vec<SchedScratch>,
) {
    let mut groups: BTreeMap<&'static str, Vec<ScheduleRequest>> = BTreeMap::new();
    let mut solos: Vec<ScheduleRequest> = Vec::new();
    for request in requests {
        // Fast paths mirror `handle` exactly: typed validation errors
        // and cache hits never wait for the solver fan-out.
        if request.tasks.is_empty() {
            respond(
                reply,
                request.id,
                Err(ServiceError::EmptyChain),
                accepted_at,
                metrics,
            );
            continue;
        }
        if request.big_cores == 0 && request.little_cores == 0 {
            respond(
                reply,
                request.id,
                Err(ServiceError::NoCores),
                accepted_at,
                metrics,
            );
            continue;
        }
        if let Some(hit) = cache.get(&CacheKey::for_request(&request)) {
            respond(reply, request.id, Ok(hit), accepted_at, metrics);
            continue;
        }
        // Energy-objective members take the sequential single-request
        // path: their strategy names live in a separate registry and the
        // batched kernel only speaks the period trait.
        if !request.objective.is_period() {
            solos.push(request);
            continue;
        }
        match &request.policy {
            Policy::Strategy(name) => match strategy_by_name(name) {
                // Tier-eligible members run through the sequential
                // single-request path instead of the scoped fan-out: the
                // chain tier serializes same-chain solves anyway (one
                // cold solve, then pure extraction), so fanning them out
                // would only have threads queue on the entry lock.
                Some(strategy) if tier.enabled() && strategy.name() == "HeRAD" => {
                    solos.push(request);
                }
                Some(strategy) => groups.entry(strategy.name()).or_default().push(request),
                None => {
                    let err = ServiceError::UnknownStrategy { name: name.clone() };
                    respond(reply, request.id, Err(err), accepted_at, metrics);
                }
            },
            Policy::Portfolio => solos.push(request),
        }
    }
    for request in solos {
        let result = compute_guarded(
            &request,
            metrics,
            cache,
            tier,
            portfolio_cfg,
            racers,
            scratch,
        );
        respond(reply, request.id, result, accepted_at, metrics);
    }
    for (name, members) in groups {
        if members.len() == 1 {
            // A lone member gains nothing from the fan-out; keep it on
            // the worker's warm single-request scratch.
            let request = &members[0];
            let result = compute_guarded(
                request,
                metrics,
                cache,
                tier,
                portfolio_cfg,
                racers,
                scratch,
            );
            respond(reply, request.id, result, accepted_at, metrics);
            continue;
        }
        run_group(
            name,
            members,
            reply,
            accepted_at,
            metrics,
            cache,
            racers,
            batch_scratches,
        );
    }
}

/// Solves one same-strategy group through `schedule_many_with`, then
/// vets, caches and answers each member. The whole group runs under one
/// panic guard: an unwind anywhere in the fan-out turns into a typed
/// `Internal` response for every member and a recycled scratch pool.
#[allow(clippy::too_many_arguments)]
fn run_group(
    name: &'static str,
    members: Vec<ScheduleRequest>,
    reply: &Sender<ScheduleResponse>,
    accepted_at: Instant,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    racers: &RacerPool,
    batch_scratches: &mut Vec<SchedScratch>,
) {
    let strategy = racers.wrapped(strategy_by_name(name).expect("group key is a known strategy"));
    let chains: Vec<TaskChain> = members.iter().map(ScheduleRequest::chain).collect();
    let jobs: Vec<(&TaskChain, Resources)> = chains
        .iter()
        .zip(&members)
        .map(|(chain, request)| (chain, request.resources()))
        .collect();
    let fanout = members.len().min(BATCH_FANOUT);
    while batch_scratches.len() < fanout {
        batch_scratches.push(SchedScratch::new());
    }
    let solved = catch_unwind(AssertUnwindSafe(|| {
        schedule_many_with(&*strategy, &jobs, &mut batch_scratches[..fanout])
    }));
    match solved {
        Ok(results) => {
            for ((request, chain), maybe) in members.iter().zip(&chains).zip(results) {
                let result = match maybe {
                    None => Err(ServiceError::Infeasible),
                    Some(solution) => {
                        // Same vet-before-cache defense as `handle`.
                        if solution_is_sound(&solution, chain, request.resources()) {
                            let outcome = ScheduleOutcome::from_solution(
                                strategy.name(),
                                &solution,
                                chain,
                                true,
                            );
                            cache.insert(CacheKey::for_request(request), outcome.clone());
                            Ok(outcome)
                        } else {
                            metrics.record_invalid_solution();
                            Err(ServiceError::Internal(format!(
                                "strategy {name} produced an invalid solution; \
                                 refusing to serve or cache it"
                            )))
                        }
                    }
                };
                respond(reply, request.id, result, accepted_at, metrics);
            }
        }
        Err(panic) => {
            metrics.record_worker_panic();
            // Any scratch in the pool may be mid-write; recycle them all.
            batch_scratches.clear();
            let msg = format!(
                "worker panicked while batch scheduling: {}",
                panic_message(panic.as_ref())
            );
            for request in &members {
                respond(
                    reply,
                    request.id,
                    Err(ServiceError::Internal(msg.clone())),
                    accepted_at,
                    metrics,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle(
    request: &ScheduleRequest,
    metrics: &ServiceMetrics,
    cache: &SolutionCache,
    tier: &ChainTier,
    portfolio_cfg: &PortfolioConfig,
    racers: &RacerPool,
    scratch: &mut SchedScratch,
) -> Result<ScheduleOutcome, ServiceError> {
    if request.tasks.is_empty() {
        return Err(ServiceError::EmptyChain);
    }
    if request.big_cores == 0 && request.little_cores == 0 {
        return Err(ServiceError::NoCores);
    }
    let key = CacheKey::for_request(request);
    if let Some(hit) = cache.get(&key) {
        return Ok(hit);
    }
    let chain = request.chain();
    let resources = request.resources();
    // Defense in depth before anything is served or cached: re-validate
    // the winning stages against the chain and the pool. An invalid
    // solution here means a scheduler bug (or an injected fault) — fail
    // loudly instead of persisting garbage. The vet runs on the raw
    // solution, before any outcome derivation touches the chain with
    // possibly out-of-range stage indices.
    let vet = |strategy: &str, solution: &Solution| -> Result<(), ServiceError> {
        if solution_is_sound(solution, &chain, resources) {
            Ok(())
        } else {
            metrics.record_invalid_solution();
            Err(ServiceError::Internal(format!(
                "strategy {strategy} produced an invalid solution; refusing to serve or cache it"
            )))
        }
    };
    if !request.objective.is_period() {
        let outcome = solve_energy(
            request,
            &chain,
            resources,
            metrics,
            portfolio_cfg,
            scratch,
            &vet,
        )?;
        if outcome.complete {
            cache.insert(key, outcome.clone());
        }
        return Ok(outcome);
    }
    let outcome = match &request.policy {
        Policy::Strategy(name) => {
            let strategy = strategy_by_name(name)
                .ok_or_else(|| ServiceError::UnknownStrategy { name: name.clone() })?;
            let strategy = racers.wrapped(strategy);
            let mut solution = Solution::empty();
            // HeRAD requests go through the chain tier: one solved DP
            // table per chain answers every pool shape by extraction
            // (bit-identical to the direct solve, pinned by the
            // conformance battery). Other strategies — and a disabled
            // tier — take the direct solver path.
            let feasible = if tier.enabled() && strategy.name() == "HeRAD" {
                tier.serve(&request.tasks, &chain, resources, &mut solution)
                    .1
            } else {
                strategy.schedule_into(&chain, resources, scratch, &mut solution)
            };
            if !feasible {
                return Err(ServiceError::Infeasible);
            }
            vet(strategy.name(), &solution)?;
            ScheduleOutcome::from_solution(strategy.name(), &solution, &chain, true)
        }
        Policy::Portfolio => {
            // The deadline bounds the compute phase: it starts ticking
            // when a worker dequeues the request, not when the client
            // submitted it (queueing delay is the queue's business and
            // is visible in the latency histogram instead).
            let deadline = request
                .deadline_us
                .map(|us| Instant::now() + Duration::from_micros(us));
            let out = portfolio::run(&chain, resources, deadline, portfolio_cfg, scratch, racers)
                .ok_or(ServiceError::Infeasible)?;
            metrics.record_portfolio(out.complete);
            vet(out.strategy, &out.solution)?;
            ScheduleOutcome::from_solution(out.strategy, &out.solution, &chain, out.complete)
        }
    };
    // Only complete outcomes are sound to replay: a deadline-truncated
    // (or racer-failure-truncated) portfolio answer may be improvable,
    // and caching it would pin the worse solution for every later
    // identical request.
    if outcome.complete {
        cache.insert(key, outcome.clone());
    }
    Ok(outcome)
}

/// Serves one energy-objective request: minimize steady-state power
/// subject to the pipeline meeting the request's target period.
///
/// The power model is the service-wide [`MilliPower::typical`] figures
/// (integer milliwatts, so the exact arithmetic and the wire stay
/// float-free). `Policy::Strategy` resolves against the energy registry
/// ([`energy_strategy_by_name`]); `Policy::Portfolio` runs an anytime
/// ladder inline on the worker — greedy `EnergyFERTAC` first (always
/// finishes), then the budgeted `Energy2CATAC`, then the exact
/// `EnergyDP` — checking the deadline between members. The outcome is
/// `complete` (and therefore cacheable) only when the exact DP ran, so
/// a deadline-truncated answer is never replayed as minimal.
fn solve_energy(
    request: &ScheduleRequest,
    chain: &TaskChain,
    resources: Resources,
    metrics: &ServiceMetrics,
    portfolio_cfg: &PortfolioConfig,
    scratch: &mut SchedScratch,
    vet: &dyn Fn(&str, &Solution) -> Result<(), ServiceError>,
) -> Result<ScheduleOutcome, ServiceError> {
    let target = request
        .objective
        .energy_target()
        .ok_or(ServiceError::InvalidObjective)?;
    let power = MilliPower::typical();
    let (name, solution, complete) = match &request.policy {
        Policy::Strategy(name) => {
            let strategy = energy_strategy_by_name(name)
                .ok_or_else(|| ServiceError::UnknownStrategy { name: name.clone() })?;
            let mut solution = Solution::empty();
            strategy
                .schedule_energy_into(chain, resources, &power, target, scratch, &mut solution)
                .ok_or(ServiceError::Infeasible)?;
            (strategy.name(), solution, true)
        }
        Policy::Portfolio => {
            let deadline = request
                .deadline_us
                .map(|us| Instant::now() + Duration::from_micros(us));
            let members: [Box<dyn EnergyScheduler>; 3] = [
                Box::new(EnergyFertac),
                Box::new(EnergyTwocatac::with_node_budget(
                    portfolio_cfg.twocatac_node_budget,
                )),
                Box::new(EnergyDp::new()),
            ];
            let last = members.len() - 1;
            let mut best: Option<(&'static str, Solution, Ratio)> = None;
            let mut complete = false;
            for (i, member) in members.iter().enumerate() {
                // The greedy first member always runs, so an expired
                // deadline still yields a valid schedule; later members
                // only start while time remains.
                if i > 0 && deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
                let mut solution = Solution::empty();
                if let Some(energy) = member.schedule_energy_into(
                    chain,
                    resources,
                    &power,
                    target,
                    scratch,
                    &mut solution,
                ) {
                    if best
                        .as_ref()
                        .is_none_or(|&(_, _, incumbent)| energy < incumbent)
                    {
                        best = Some((member.name(), solution, energy));
                    }
                }
                if i == last {
                    complete = true;
                }
            }
            metrics.record_portfolio(complete);
            let (name, solution, _) = best.ok_or(ServiceError::Infeasible)?;
            (name, solution, complete)
        }
    };
    vet(name, &solution)?;
    // Defense in depth beyond structural soundness: an energy answer
    // must actually honor the throughput constraint it was solved under.
    if solution.period(chain) > target {
        metrics.record_invalid_solution();
        return Err(ServiceError::Internal(format!(
            "energy strategy {name} missed the target period; refusing to serve or cache it"
        )));
    }
    let energy_mw = power.solution_power_milliwatts(chain, &solution, target);
    metrics.record_energy(energy_mw);
    Ok(
        ScheduleOutcome::from_solution(name, &solution, chain, complete)
            .with_energy_milliwatts(energy_mw),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::Scheduler;
    use amp_core::{Resources, Task, TaskChain};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(40, 95, true),
            Task::new(5, 12, false),
        ])
    }

    fn engine(workers: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            racer_threads: 2,
            queue_depth: 64,
            cache_capacity: 128,
            cache_shards: 4,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn single_strategy_request_round_trips() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(
            42,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        let resp = e.schedule_blocking(req);
        assert_eq!(resp.id, 42);
        let out = resp.result.expect("feasible");
        assert_eq!(out.strategy, "FERTAC");
        assert!(out.complete);
        assert!(out.solution().validate(&chain()).is_ok());
        e.shutdown();
    }

    #[test]
    fn portfolio_beats_or_matches_fertac_and_caches() {
        let e = engine(2);
        let req = ScheduleRequest::from_chain(1, &chain(), Resources::new(2, 2), Policy::Portfolio);
        let first = e.schedule_blocking(req.clone()).result.expect("feasible");
        assert!(!first.cache_hit);
        assert!(first.complete);
        let second = e
            .schedule_blocking(ScheduleRequest { id: 2, ..req })
            .result
            .expect("feasible");
        assert!(second.cache_hit);
        assert_eq!(second.period, first.period);
        assert_eq!(second.decomposition, first.decomposition);
        assert_eq!(second.stages, first.stages);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let e = engine(1);
        let mut req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("NoSuchStrategy".to_string()),
        );
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::UnknownStrategy {
                name: "NoSuchStrategy".to_string()
            }
        );
        req.policy = Policy::Portfolio;
        req.tasks.clear();
        assert_eq!(
            e.schedule_blocking(req.clone()).result.unwrap_err(),
            ServiceError::EmptyChain
        );
        let req = ScheduleRequest::from_chain(2, &chain(), Resources::new(0, 0), Policy::Portfolio);
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::NoCores
        );
        let m = e.metrics();
        assert_eq!(m.errors, 3);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // No workers: accepted jobs stay queued, so the bound is exact.
        let e = Engine::start(EngineConfig {
            workers: 0,
            racer_threads: 0,
            queue_depth: 2,
            cache_capacity: 0,
            cache_shards: 1,
            ..EngineConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        let req = ScheduleRequest::from_chain(0, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert!(e.try_submit(req.clone(), tx.clone()).is_ok());
        assert_eq!(e.try_submit(req, tx).unwrap_err(), ServiceError::Overloaded);
        let m = e.metrics();
        assert_eq!((m.requests, m.rejected), (2, 1));
    }

    /// Regression: `submit` on a zero-worker engine used to block forever
    /// once the queue filled; it now rejects with `Overloaded`, and
    /// `schedule_blocking` refuses up front with `NoWorkers`.
    #[test]
    fn zero_worker_engine_rejects_instead_of_deadlocking() {
        let e = Engine::start(EngineConfig {
            workers: 0,
            racer_threads: 0,
            queue_depth: 2,
            cache_capacity: 0,
            cache_shards: 1,
            ..EngineConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        let req = ScheduleRequest::from_chain(0, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert!(e.submit(req.clone(), tx.clone()).is_ok());
        assert!(e.submit(req.clone(), tx.clone()).is_ok());
        // Queue full: a blocking submit would previously never return.
        assert_eq!(
            e.submit(req.clone(), tx).unwrap_err(),
            ServiceError::Overloaded
        );
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::NoWorkers
        );
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let e = engine(2);
        let (tx, rx) = channel::unbounded();
        for id in 0..32 {
            let req =
                ScheduleRequest::from_chain(id, &chain(), Resources::new(2, 2), Policy::Portfolio);
            e.submit(req, tx.clone()).expect("accepted");
        }
        drop(tx);
        e.shutdown();
        let mut ids: Vec<u64> = rx.iter().map(|r: ScheduleResponse| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
    }

    /// One batch slot carries all of its members: validation errors,
    /// unknown strategies, portfolio members and grouped same-strategy
    /// solves all answer exactly once, and grouped results are
    /// bit-identical to what the core scheduler computes directly.
    #[test]
    fn batch_submission_matches_sequential_and_caches() {
        let e = engine(2);
        let pools = [(2u64, 2u64), (1, 3), (3, 1), (2, 0)];
        let mut requests = Vec::new();
        let mut id = 0u64;
        for strat in ["FERTAC", "HeRAD", "2CATAC"] {
            for &(b, l) in &pools {
                requests.push(ScheduleRequest::from_chain(
                    id,
                    &chain(),
                    Resources::new(b, l),
                    Policy::Strategy(strat.to_string()),
                ));
                id += 1;
            }
        }
        let strategy_only = requests.clone();
        requests.push(ScheduleRequest::from_chain(
            100,
            &chain(),
            Resources::new(0, 0),
            Policy::Portfolio,
        ));
        let mut empty =
            ScheduleRequest::from_chain(101, &chain(), Resources::new(2, 2), Policy::Portfolio);
        empty.tasks.clear();
        requests.push(empty);
        requests.push(ScheduleRequest::from_chain(
            102,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("NoSuchStrategy".to_string()),
        ));
        requests.push(ScheduleRequest::from_chain(
            103,
            &chain(),
            Resources::new(2, 2),
            Policy::Portfolio,
        ));
        let total = requests.len();
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            e.try_submit_batch(requests.clone(), tx).expect("accepted"),
            total
        );
        let mut results = std::collections::BTreeMap::new();
        for _ in 0..total {
            let r: ScheduleResponse = rx.recv().expect("one response per member");
            assert!(results.insert(r.id, r.result).is_none(), "duplicate id");
        }
        assert!(rx.try_recv().is_err(), "no extra responses");
        // Grouped members match the core scheduler exactly.
        for req in &strategy_only {
            let Policy::Strategy(name) = &req.policy else {
                unreachable!()
            };
            let strategy = strategy_by_name(name).expect("known");
            let direct = strategy
                .schedule(&req.chain(), req.resources())
                .expect("feasible");
            let expect =
                ScheduleOutcome::from_solution(strategy.name(), &direct, &req.chain(), true);
            assert_eq!(results[&req.id].as_ref().expect("feasible"), &expect);
        }
        assert_eq!(results[&100], Err(ServiceError::NoCores));
        assert_eq!(results[&101], Err(ServiceError::EmptyChain));
        assert_eq!(
            results[&102],
            Err(ServiceError::UnknownStrategy {
                name: "NoSuchStrategy".to_string()
            })
        );
        assert!(results[&103].is_ok(), "portfolio member answers");
        // A repeat batch of the strategy members is served from cache.
        let (tx, rx) = channel::unbounded();
        let n = strategy_only.len();
        assert_eq!(e.try_submit_batch(strategy_only, tx).expect("accepted"), n);
        for _ in 0..n {
            let r: ScheduleResponse = rx.recv().expect("response");
            assert!(r.result.expect("feasible").cache_hit, "second pass hits");
        }
    }

    /// A batch is one queue slot: a depth-1 queue accepts a 16-request
    /// burst, and a rejected batch rejects (and counts) every member.
    #[test]
    fn batch_occupies_one_queue_slot_and_rejects_wholesale() {
        let e = Engine::start(EngineConfig {
            workers: 0,
            racer_threads: 0,
            queue_depth: 1,
            cache_capacity: 0,
            cache_shards: 1,
            ..EngineConfig::default()
        });
        let (tx, _rx) = channel::unbounded();
        let requests: Vec<ScheduleRequest> = (0..16)
            .map(|id| {
                ScheduleRequest::from_chain(id, &chain(), Resources::new(1, 1), Policy::Portfolio)
            })
            .collect();
        assert_eq!(
            e.try_submit_batch(requests.clone(), tx.clone()).unwrap(),
            16
        );
        let bounced = e.try_submit_batch(requests.clone(), tx).unwrap_err();
        assert_eq!(bounced.error, ServiceError::Overloaded);
        let ids = |reqs: &[ScheduleRequest]| reqs.iter().map(|r| r.id).collect::<Vec<_>>();
        assert_eq!(
            ids(&bounced.requests),
            ids(&requests),
            "every member travels back on rejection"
        );
        let m = e.metrics();
        assert_eq!((m.requests, m.rejected), (16, 16));
    }

    /// The satellite audit regression: closing the engine through a
    /// shared `Arc` while submitters race must never lose (or duplicate)
    /// a response for an accepted request — the exact window a socket
    /// front end would hit on drain. Before `close`/`drain` existed,
    /// shutdown required owning the engine by value, and a shared-owner
    /// front end had no safe way to stop admissions at all.
    #[test]
    fn close_behind_arc_never_loses_an_accepted_response() {
        let e = Arc::new(engine(2));
        let (reply_tx, reply_rx) = channel::unbounded();
        let (accepted_tx, accepted_rx) = channel::unbounded();
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let e = Arc::clone(&e);
            let reply_tx = reply_tx.clone();
            let accepted_tx = accepted_tx.clone();
            threads.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let id = t * 1000 + i;
                    let req = ScheduleRequest::from_chain(
                        id,
                        &chain(),
                        Resources::new(1 + id % 3, id % 4),
                        Policy::Strategy("FERTAC".to_string()),
                    );
                    match e.try_submit(req, reply_tx.clone()) {
                        // Accepted: a response is now owed, even across
                        // a racing close.
                        Ok(()) => accepted_tx.send(id).unwrap(),
                        // Backpressure: not enqueued, no response owed.
                        Err(ServiceError::Overloaded) => {}
                        Err(ServiceError::ShuttingDown) => break,
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
            }));
        }
        // Let the submitters race, then slam the door mid-stream.
        thread::sleep(Duration::from_millis(2));
        e.close();
        e.drain();
        assert!(e.is_closed());
        for th in threads {
            th.join().unwrap();
        }
        drop(reply_tx);
        drop(accepted_tx);
        let mut accepted: Vec<u64> = accepted_rx.iter().collect();
        let mut answered: Vec<u64> = reply_rx.iter().map(|r: ScheduleResponse| r.id).collect();
        accepted.sort_unstable();
        answered.sort_unstable();
        assert_eq!(
            answered, accepted,
            "every accepted request answered exactly once"
        );
        // Post-close submissions get the typed error, not a panic.
        let (tx, _rx) = channel::unbounded();
        let late =
            ScheduleRequest::from_chain(9999, &chain(), Resources::new(1, 1), Policy::Portfolio);
        assert_eq!(
            e.try_submit(late.clone(), tx.clone()).unwrap_err(),
            ServiceError::ShuttingDown
        );
        assert_eq!(
            e.try_submit_batch(vec![late], tx).unwrap_err().error,
            ServiceError::ShuttingDown
        );
    }

    /// A panic injected into the compute path still yields exactly one
    /// typed `Internal` response, the panic is counted, and the worker
    /// keeps serving afterwards.
    #[test]
    fn injected_panic_yields_one_internal_response_and_worker_survives() {
        struct Bomb {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("injected fault");
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "FERTAC" {
                Box::new(Bomb { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 2,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(
            9,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        let resp = e.schedule_blocking(req);
        assert_eq!(resp.id, 9);
        match resp.result {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
        // The same (sole) worker answers the next request: not dead.
        let ok = e.schedule_blocking(ScheduleRequest::from_chain(
            10,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        ));
        assert!(ok.result.is_ok());
        let m = e.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.workers_alive, 1);
        assert_eq!(m.responses, 2);
    }

    /// The acceptance-criteria regression: a portfolio whose racer dies
    /// reports `complete == false` and the outcome is NOT cached — a
    /// resubmission recomputes instead of replaying.
    #[test]
    fn dead_racer_outcome_is_incomplete_and_uncached() {
        struct Bomb {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("racer killed");
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "HeRAD" {
                Box::new(Bomb { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 2,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(1, &chain(), Resources::new(2, 2), Policy::Portfolio);
        let first = e.schedule_blocking(req.clone()).result.expect("feasible");
        assert!(!first.complete, "dead racer must clear complete");
        let second = e
            .schedule_blocking(ScheduleRequest { id: 2, ..req })
            .result
            .expect("feasible");
        assert!(!second.cache_hit, "incomplete outcomes must not be cached");
        let m = e.metrics();
        assert_eq!(m.racer_panics, 2, "one per (uncached) submission");
        assert_eq!(m.portfolio_truncated, 2);
        assert_eq!(m.portfolio_complete, 0);
        assert_eq!(e.cache_stats().insertions, 0);
    }

    /// Defense in depth: an injected invalid solution on the
    /// single-strategy path becomes a typed `Internal` error and never
    /// reaches the cache.
    #[test]
    fn invalid_solution_is_refused_and_never_cached() {
        struct Liar {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Liar {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                chain: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                out: &mut Solution,
            ) -> bool {
                *out = Solution::new(vec![amp_core::Stage::new(
                    0,
                    chain.len(),
                    1,
                    amp_core::CoreType::Big,
                )]);
                true
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "FERTAC" {
                Box::new(Liar { inner })
            } else {
                inner
            }
        });
        let e = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 0,
            queue_depth: 8,
            cache_capacity: 16,
            cache_shards: 1,
            fault_wrap: Some(wrap),
            ..EngineConfig::default()
        });
        let req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        match e.schedule_blocking(req).result {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("invalid"), "{msg}"),
            other => panic!("expected Internal error, got {other:?}"),
        }
        assert_eq!(e.cache_stats().insertions, 0);
        assert_eq!(e.metrics().invalid_solutions, 1);
    }

    /// The tentpole acceptance shape at engine scope: a pool sweep over
    /// one chain pays exactly one cold HeRAD solve, every other pool is
    /// answered from the chain table — and the answers are bit-identical
    /// to a tier-less engine's.
    #[test]
    fn pool_sweep_pays_one_cold_solve_and_matches_a_tierless_engine() {
        let tiered = engine(1);
        let tierless = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 0,
            queue_depth: 64,
            cache_capacity: 0,
            chain_capacity: 0,
            ..EngineConfig::default()
        });
        let sweep: Vec<Resources> = (1..=3)
            .flat_map(|big| (0..=3).map(move |little| Resources::new(big, little)))
            .collect();
        for (id, &pool) in sweep.iter().enumerate() {
            let req = ScheduleRequest::from_chain(
                id as u64,
                &chain(),
                pool,
                Policy::Strategy("HeRAD".to_string()),
            );
            let a = tiered
                .schedule_blocking(req.clone())
                .result
                .expect("tiered");
            let b = tierless.schedule_blocking(req).result.expect("tierless");
            assert_eq!(a, b, "tier answer must be bit-identical at pool {pool:?}");
        }
        let stats = tiered.tier_stats();
        assert_eq!(stats.cold_solves, 1, "one chain = one cold solve");
        assert_eq!(stats.hits + stats.grows, sweep.len() as u64 - 1);
        assert!(stats.grows >= 1, "ascending sweep must grow in place");
        assert_eq!(stats.entries, 1);
        assert_eq!(tierless.tier_stats(), ChainTierStats::default());
        let status = tiered.status_json();
        assert!(status.contains("\"chain_cache\":{\"hits\":"));
        assert!(status.contains("\"cold_solves\":1"));
    }

    /// A batched pool sweep routes its tier-eligible members through the
    /// sequential solo path, so even one burst pays a single cold solve.
    #[test]
    fn batched_pool_sweep_still_pays_one_cold_solve() {
        let e = engine(2);
        let requests: Vec<ScheduleRequest> = (0..=3)
            .flat_map(|big| (0..=3).map(move |little| (big, little)))
            .filter(|&(big, little)| big + little > 0)
            .enumerate()
            .map(|(id, (big, little))| {
                ScheduleRequest::from_chain(
                    id as u64,
                    &chain(),
                    Resources::new(big, little),
                    Policy::Strategy("HeRAD".to_string()),
                )
            })
            .collect();
        let n = requests.len();
        let (tx, rx) = channel::unbounded();
        assert_eq!(e.try_submit_batch(requests, tx).unwrap(), n);
        let mut feasible = 0;
        for _ in 0..n {
            if rx.recv().expect("response").result.is_ok() {
                feasible += 1;
            }
        }
        assert!(feasible >= n - 4, "only tiny pools may be infeasible");
        let stats = e.tier_stats();
        assert_eq!(stats.cold_solves, 1, "one chain = one cold solve per batch");
        assert_eq!(stats.hits + stats.grows + stats.cold_solves, n as u64);
    }

    /// Warm restart through the engine config: an engine pointed at a
    /// snapshot written by a previous engine answers the whole sweep
    /// without a single cold solve; a corrupt snapshot is rejected with
    /// a counter and the engine starts with clean misses.
    #[test]
    fn snapshot_path_warm_restarts_and_rejects_corruption() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "amp-engine-snapshot-{}-{:?}.json",
            std::process::id(),
            thread::current().id()
        ));
        let sweep: Vec<Resources> = (1..=3)
            .flat_map(|big| (0..=2).map(move |little| Resources::new(big, little)))
            .collect();
        let first = engine(1);
        for (id, &pool) in sweep.iter().enumerate() {
            let req = ScheduleRequest::from_chain(
                id as u64,
                &chain(),
                pool,
                Policy::Strategy("HeRAD".to_string()),
            );
            assert!(first.schedule_blocking(req).result.is_ok());
        }
        assert_eq!(first.save_tier_snapshot(&path).expect("save"), 1);
        first.shutdown();

        let warm = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 0,
            queue_depth: 64,
            cache_capacity: 0,
            snapshot_path: Some(path.clone()),
            ..EngineConfig::default()
        });
        for (id, &pool) in sweep.iter().enumerate() {
            let req = ScheduleRequest::from_chain(
                100 + id as u64,
                &chain(),
                pool,
                Policy::Strategy("HeRAD".to_string()),
            );
            assert!(warm.schedule_blocking(req).result.is_ok());
        }
        let stats = warm.tier_stats();
        assert_eq!(stats.cold_solves, 0, "warm restart must not solve cold");
        assert_eq!(stats.hits, sweep.len() as u64);
        assert_eq!(stats.snapshot_loaded, 1);
        warm.shutdown();

        std::fs::write(&path, b"{\"kind\":\"amp-chain-tier-snapshot\",").unwrap();
        let sour = Engine::start(EngineConfig {
            workers: 1,
            racer_threads: 0,
            queue_depth: 8,
            snapshot_path: Some(path.clone()),
            ..EngineConfig::default()
        });
        let stats = sour.tier_stats();
        assert_eq!(stats.snapshot_loaded, 0);
        assert_eq!(stats.snapshot_rejected, 1);
        // Clean miss, not a crash: the request still gets answered.
        let req = ScheduleRequest::from_chain(
            1,
            &chain(),
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        );
        assert!(sour.schedule_blocking(req).result.is_ok());
        assert_eq!(sour.tier_stats().cold_solves, 1);
        std::fs::remove_file(&path).ok();
    }

    use crate::request::Objective;
    use amp_core::sched::{EnergyDp, EnergyScheduler};
    use amp_core::{MilliPower, Ratio};

    /// A generous target every strategy can meet on `chain()` × (2,2).
    fn energy_objective() -> Objective {
        Objective::min_energy(Ratio::from_int(200))
    }

    #[test]
    fn energy_request_reports_milliwatts_and_matches_the_dp() {
        let e = engine(2);
        let c = chain();
        let req = ScheduleRequest::from_chain(
            1,
            &c,
            Resources::new(2, 2),
            Policy::Strategy("EnergyDP".to_string()),
        )
        .with_objective(energy_objective());
        let out = e.schedule_blocking(req).result.expect("feasible");
        assert_eq!(out.strategy, "EnergyDP");
        assert!(out.complete);
        let target = Ratio::from_int(200);
        let solution = out.solution();
        assert!(solution.period(&c) <= target);
        // The served figure is the engine's own model evaluated on the
        // served stages — and the DP run inside the engine matches a
        // direct solve.
        let power = MilliPower::typical();
        let served = out.energy_milliwatts.expect("energy figure present");
        assert_eq!(
            served,
            power.solution_power_milliwatts(&c, &solution, target)
        );
        let (direct, _) = EnergyDp::new()
            .schedule_energy(&c, Resources::new(2, 2), &power, target)
            .expect("feasible");
        assert_eq!(power.solution_power_milliwatts(&c, &direct, target), served);
        let m = e.metrics();
        assert_eq!(m.energy_requests, 1);
        assert_eq!(m.energy_milliwatts_served, served);
        e.shutdown();
    }

    #[test]
    fn energy_portfolio_is_complete_and_minimal() {
        let e = engine(2);
        let c = chain();
        let req = ScheduleRequest::from_chain(1, &c, Resources::new(2, 2), Policy::Portfolio)
            .with_objective(energy_objective());
        let out = e.schedule_blocking(req).result.expect("feasible");
        assert!(out.complete, "the exact DP member must certify the run");
        let power = MilliPower::typical();
        let target = Ratio::from_int(200);
        let (_, optimal) = EnergyDp::new()
            .schedule_energy(&c, Resources::new(2, 2), &power, target)
            .expect("feasible");
        let served = power.solution_power_mw(&c, &out.solution(), target);
        assert_eq!(
            served, optimal,
            "portfolio winner must match the DP optimum"
        );
        e.shutdown();
    }

    /// The cache-correctness satellite: objective is key material, so a
    /// period entry never answers an energy request (or vice versa), and
    /// distinct energy targets get distinct entries — while repeats of
    /// the same energy request do hit.
    #[test]
    fn cache_separates_objectives_and_targets() {
        let e = engine(2);
        let c = chain();
        let res = Resources::new(2, 2);
        // Warm a period entry through the chain tier (HeRAD) and a
        // plain one (FERTAC).
        for (id, strat) in [(1, "HeRAD"), (2, "FERTAC")] {
            let req = ScheduleRequest::from_chain(id, &c, res, Policy::Strategy(strat.to_string()));
            assert!(!e.schedule_blocking(req).result.expect("ok").cache_hit);
        }
        // Same chain and pool under the energy objective: a fresh solve,
        // never the period entry.
        let energy_req =
            ScheduleRequest::from_chain(3, &c, res, Policy::Strategy("EnergyDP".to_string()))
                .with_objective(energy_objective());
        let first = e.schedule_blocking(energy_req.clone()).result.expect("ok");
        assert!(!first.cache_hit, "period entries must not answer energy");
        assert!(first.energy_milliwatts.is_some());
        // The repeat hits, and the hit still carries the energy figure.
        let second = e
            .schedule_blocking(ScheduleRequest {
                id: 4,
                ..energy_req.clone()
            })
            .result
            .expect("ok");
        assert!(second.cache_hit);
        assert_eq!(second.energy_milliwatts, first.energy_milliwatts);
        // A different target is a different instance.
        let relaxed = e
            .schedule_blocking(
                ScheduleRequest {
                    id: 5,
                    ..energy_req
                }
                .with_objective(Objective::min_energy(Ratio::from_int(400))),
            )
            .result
            .expect("ok");
        assert!(!relaxed.cache_hit, "targets must not share cache entries");
        // And the period path still hits its own entry, without energy.
        let period_again = e
            .schedule_blocking(ScheduleRequest::from_chain(
                6,
                &c,
                res,
                Policy::Strategy("FERTAC".to_string()),
            ))
            .result
            .expect("ok");
        assert!(period_again.cache_hit);
        assert_eq!(period_again.energy_milliwatts, None);
        e.shutdown();
    }

    #[test]
    fn energy_requests_reject_bad_targets_and_unknown_strategies() {
        let e = engine(2);
        let c = chain();
        // A malformed target is a typed InvalidObjective.
        for bad in ["nonsense", "inf", "0/1", "3/0"] {
            let req = ScheduleRequest::from_chain(
                1,
                &c,
                Resources::new(2, 2),
                Policy::Strategy("EnergyDP".to_string()),
            )
            .with_objective(Objective::MinEnergy {
                target_period: bad.to_string(),
            });
            assert_eq!(
                e.schedule_blocking(req).result.unwrap_err(),
                ServiceError::InvalidObjective,
                "target {bad:?}"
            );
        }
        // Period strategy names do not resolve under the energy
        // objective (and vice versa the registries stay separate).
        let req = ScheduleRequest::from_chain(
            2,
            &c,
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        )
        .with_objective(energy_objective());
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::UnknownStrategy {
                name: "HeRAD".to_string()
            }
        );
        // An unmeetable target is Infeasible, not an internal error.
        let req = ScheduleRequest::from_chain(
            3,
            &c,
            Resources::new(2, 2),
            Policy::Strategy("EnergyDP".to_string()),
        )
        .with_objective(Objective::min_energy(Ratio::new(1, 1000)));
        assert_eq!(
            e.schedule_blocking(req).result.unwrap_err(),
            ServiceError::Infeasible
        );
        e.shutdown();
    }

    /// Batched energy members route through the sequential path and
    /// answer exactly once each, alongside period members.
    #[test]
    fn batches_mix_energy_and_period_members() {
        let e = engine(2);
        let c = chain();
        let res = Resources::new(2, 2);
        let requests = vec![
            ScheduleRequest::from_chain(0, &c, res, Policy::Strategy("FERTAC".to_string())),
            ScheduleRequest::from_chain(1, &c, res, Policy::Strategy("EnergyDP".to_string()))
                .with_objective(energy_objective()),
            ScheduleRequest::from_chain(2, &c, res, Policy::Portfolio)
                .with_objective(energy_objective()),
            ScheduleRequest::from_chain(3, &c, res, Policy::Strategy("HeRAD".to_string())),
        ];
        let (tx, rx) = channel::unbounded();
        assert_eq!(e.try_submit_batch(requests, tx).expect("accepted"), 4);
        let mut outcomes: Vec<(u64, ScheduleOutcome)> = (0..4)
            .map(|_| {
                let resp = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
                (resp.id, resp.result.expect("feasible"))
            })
            .collect();
        outcomes.sort_by_key(|(id, _)| *id);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[1].1.energy_milliwatts.is_some());
        assert!(outcomes[2].1.energy_milliwatts.is_some());
        assert_eq!(outcomes[0].1.energy_milliwatts, None);
        assert_eq!(outcomes[3].1.energy_milliwatts, None);
        e.shutdown();
    }
}
