//! The persistent racer pool behind the strategy portfolio.
//!
//! The portfolio used to spawn two fresh OS threads per request — fine in
//! a demo, fatal at "millions of users" scale: `thread::spawn` panics
//! under resource exhaustion (unwinding the *worker* that called it), and
//! every request pays thread setup/teardown. The [`RacerPool`] replaces
//! that with a small, fixed set of long-lived racer threads behind a
//! bounded job queue:
//!
//! * **No steady-state thread creation.** Threads are spawned once, at
//!   pool construction, with [`std::thread::Builder`] — a spawn failure
//!   is counted and tolerated (a smaller, possibly empty pool), never a
//!   panic. Every job is served by a pooled thread that reuses its own
//!   [`SchedScratch`] arena.
//! * **Panic isolation.** Each job runs under
//!   [`catch_unwind`](std::panic::catch_unwind); a panicking strategy is
//!   reported to the submitter as [`RacerResult::Failed`] and counted in
//!   [`RacerPoolStats::panics`]. The racer thread survives, so the pool
//!   never silently shrinks. The thread's scratch arena is discarded
//!   after a panic (a half-written DP table is not trustworthy).
//! * **Cooperative cancellation.** Every submission carries a generation
//!   number (from a pool-wide counter) and a shared cancellation flag.
//!   A collector that stops waiting — deadline hit, or the calling
//!   worker itself unwinding — flips the flag; queued jobs for that
//!   request are then skipped at dequeue instead of running to
//!   completion for nobody. A job already mid-solve merely finishes and
//!   fails its send; it occupies one pool slot, never a fresh thread.
//! * **Validated results.** A racer vets its own solution (structure and
//!   resource usage) before reporting it; an invalid solution — only
//!   possible through a fault-injection wrapper or a genuine scheduler
//!   bug — becomes [`RacerResult::Failed`] and is counted, so garbage
//!   can never win the portfolio or reach the cache.
//!
//! The pool also carries the service's test-only fault-injection seam: a
//! [`StrategyWrap`] applied to every scheduler the portfolio or engine is
//! about to run. Production configs leave it `None`; the chaos harness
//! uses it to inject panics, delays and invalid solutions.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use amp_core::sched::{SchedScratch, Scheduler};
use amp_core::{Resources, Solution, TaskChain};
use crossbeam::channel::{self, Receiver, Sender};

/// Test-only fault-injection seam: wraps every scheduler the service is
/// about to run (portfolio members, inline FERTAC, single-strategy
/// requests). `None` in every production configuration.
pub type StrategyWrap = Arc<dyn Fn(Box<dyn Scheduler>) -> Box<dyn Scheduler> + Send + Sync>;

/// What one racer reported back for one job.
#[derive(Debug)]
pub enum RacerResult {
    /// A validated solution within the request's pool.
    Solved(Solution),
    /// The strategy ran to completion and found no valid mapping.
    Infeasible,
    /// The strategy panicked or produced an invalid solution; nothing
    /// usable was obtained and the member cannot count toward a
    /// `complete` outcome.
    Failed,
}

/// One racer's report: which strategy, and what happened.
#[derive(Debug)]
pub struct RacerReport {
    /// Display name of the strategy that ran.
    pub name: &'static str,
    /// Its result.
    pub result: RacerResult,
}

/// One queued racer job.
pub struct RacerJob {
    /// The scheduler to run (already fault-wrapped when a wrap is set).
    pub strategy: Box<dyn Scheduler>,
    /// The request chain (owned: the submitting worker moves on).
    pub chain: TaskChain,
    /// The request pool.
    pub resources: Resources,
    /// Request generation, from [`RacerPool::next_generation`].
    pub generation: u64,
    /// Cooperative-cancellation flag shared with the collector.
    pub cancel: Arc<AtomicBool>,
    /// Where the report goes; a send after the collector gave up fails
    /// silently.
    pub reply: Sender<RacerReport>,
}

/// Counters shared by the pool's threads and its owner.
#[derive(Default)]
struct RacerShared {
    panics: AtomicU64,
    invalid: AtomicU64,
    cancelled: AtomicU64,
    jobs_run: AtomicU64,
    alive: AtomicU64,
}

/// Point-in-time counters of a [`RacerPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RacerPoolStats {
    /// Panics caught inside racer jobs (the thread survived each one).
    pub panics: u64,
    /// Racer solutions rejected by validation before reporting.
    pub invalid: u64,
    /// Jobs skipped at dequeue because their request was abandoned.
    pub cancelled: u64,
    /// Jobs actually executed.
    pub jobs_run: u64,
    /// Racer threads currently alive.
    pub alive: u64,
    /// Racer threads successfully spawned over the pool's lifetime.
    pub threads_spawned: u64,
    /// `thread::Builder::spawn` failures at construction (the pool runs
    /// degraded, down to FERTAC-only service at zero threads).
    pub spawn_failures: u64,
}

/// A fixed-size pool of long-lived racer threads consuming a bounded job
/// queue. See the module docs for the design.
pub struct RacerPool {
    job_tx: Option<Sender<RacerJob>>,
    threads: Vec<JoinHandle<()>>,
    shared: Arc<RacerShared>,
    generation: AtomicU64,
    threads_spawned: u64,
    spawn_failures: u64,
    wrap: Option<StrategyWrap>,
}

impl RacerPool {
    /// Spawns `threads` racer threads. Spawn failures are counted, not
    /// propagated: the pool comes up with however many threads the OS
    /// granted (possibly zero — the portfolio then degrades to its
    /// inline FERTAC member). `wrap` is the fault-injection seam.
    #[must_use]
    pub fn new(threads: usize, wrap: Option<StrategyWrap>) -> Self {
        // Enough queue for every engine worker to have both racers of
        // its current request in flight, plus slack for abandoned jobs
        // awaiting their cancellation skip.
        let (job_tx, job_rx) = channel::bounded::<RacerJob>(threads.max(1) * 4 + 4);
        let shared = Arc::new(RacerShared::default());
        let mut spawned = Vec::with_capacity(threads);
        let mut spawn_failures = 0u64;
        for i in 0..threads {
            let rx = job_rx.clone();
            let thread_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name(format!("amp-service-racer-{i}"))
                .spawn(move || racer_loop(&rx, &thread_shared))
            {
                Ok(handle) => {
                    // Counted here, not inside the thread, so a submit
                    // racing pool construction never sees a stale zero.
                    shared.alive.fetch_add(1, Ordering::AcqRel);
                    spawned.push(handle);
                }
                Err(_) => spawn_failures += 1,
            }
        }
        RacerPool {
            job_tx: Some(job_tx),
            threads_spawned: spawned.len() as u64,
            threads: spawned,
            shared,
            generation: AtomicU64::new(0),
            spawn_failures,
            wrap,
        }
    }

    /// Applies the fault-injection wrap (identity when none is set).
    #[must_use]
    pub fn wrapped(&self, strategy: Box<dyn Scheduler>) -> Box<dyn Scheduler> {
        match &self.wrap {
            Some(wrap) => wrap(strategy),
            None => strategy,
        }
    }

    /// A fresh generation number for one portfolio run.
    #[must_use]
    pub fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Racer threads currently alive.
    #[must_use]
    pub fn alive(&self) -> u64 {
        self.shared.alive.load(Ordering::Acquire)
    }

    /// Non-blocking submission. `false` when the pool is dead, has no
    /// live threads, or its queue is full — the caller must then count
    /// that racer as unreported (the outcome cannot be `complete`).
    #[must_use]
    pub fn try_submit(&self, job: RacerJob) -> bool {
        if self.alive() == 0 {
            return false;
        }
        match &self.job_tx {
            Some(tx) => tx.try_send(job).is_ok(),
            None => false,
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> RacerPoolStats {
        RacerPoolStats {
            panics: self.shared.panics.load(Ordering::Relaxed),
            invalid: self.shared.invalid.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            alive: self.alive(),
            threads_spawned: self.threads_spawned,
            spawn_failures: self.spawn_failures,
        }
    }

    /// Counts an invalid solution detected *outside* the racer threads
    /// (the portfolio's inline member) into the pool's `invalid` total,
    /// so one counter accounts for every rejected portfolio solution.
    pub fn record_inline_invalid(&self) {
        self.shared.invalid.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for RacerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// `true` when `solution` is structurally valid for `chain` and fits in
/// `resources` — the vetting every racer (and the engine, as
/// defense-in-depth before a cache insert) applies.
#[must_use]
pub fn solution_is_sound(solution: &Solution, chain: &TaskChain, resources: Resources) -> bool {
    if solution.validate(chain).is_err() {
        return false;
    }
    let used = solution.used_cores();
    used.big <= resources.big && used.little <= resources.little
}

fn racer_loop(rx: &Receiver<RacerJob>, shared: &RacerShared) {
    // `alive` was incremented by the spawner; this loop only gives the
    // slot back on exit.
    // One scratch arena per racer thread, shared across every strategy it
    // ever runs (the scratch is staleness-proof across shapes and
    // strategies; the conformance `check_scratch` layer pins that). For
    // the portfolio's HeRAD racer this also carries the sweep memo, so
    // repeated requests for the same chain at different pools reuse the
    // parked DP table (pool-delta warm starts) without any service-side
    // wiring.
    let mut scratch = SchedScratch::new();
    while let Ok(job) = rx.recv() {
        if job.cancel.load(Ordering::Acquire) {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        let name = job.strategy.name();
        let solved = catch_unwind(AssertUnwindSafe(|| {
            let mut out = Solution::empty();
            job.strategy
                .schedule_into(&job.chain, job.resources, &mut scratch, &mut out)
                .then_some(out)
        }));
        let result = match solved {
            Ok(Some(solution)) => {
                if solution_is_sound(&solution, &job.chain, job.resources) {
                    RacerResult::Solved(solution)
                } else {
                    shared.invalid.fetch_add(1, Ordering::Relaxed);
                    RacerResult::Failed
                }
            }
            Ok(None) => RacerResult::Infeasible,
            Err(_) => {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                // The unwound solve may have left the arena half-written;
                // a fresh one is cheap and provably clean.
                scratch = SchedScratch::new();
                RacerResult::Failed
            }
        };
        let _ = job.reply.send(RacerReport { name, result });
    }
    shared.alive.fetch_sub(1, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::{Fertac, Herad};
    use amp_core::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ])
    }

    fn submit(pool: &RacerPool, strategy: Box<dyn Scheduler>) -> Receiver<RacerReport> {
        let (tx, rx) = channel::bounded(1);
        let ok = pool.try_submit(RacerJob {
            strategy: pool.wrapped(strategy),
            chain: chain(),
            resources: Resources::new(2, 2),
            generation: pool.next_generation(),
            cancel: Arc::new(AtomicBool::new(false)),
            reply: tx,
        });
        assert!(ok, "pool accepts jobs");
        rx
    }

    #[test]
    fn pooled_racer_solves_and_survives() {
        let pool = RacerPool::new(1, None);
        for _ in 0..3 {
            let rx = submit(&pool, Box::new(Herad::new()));
            let report = rx.recv().expect("racer reports");
            assert_eq!(report.name, "HeRAD");
            assert!(matches!(report.result, RacerResult::Solved(_)));
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_run, 3);
        assert_eq!(stats.threads_spawned, 1);
        assert_eq!(stats.alive, 1);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn panicking_strategy_is_contained_and_counted() {
        struct Bomb;
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                "Bomb"
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("injected");
            }
        }
        let pool = RacerPool::new(1, None);
        let rx = submit(&pool, Box::new(Bomb));
        let report = rx.recv().expect("failure still reported");
        assert!(matches!(report.result, RacerResult::Failed));
        // The same thread keeps serving after the panic.
        let rx = submit(&pool, Box::new(Fertac));
        assert!(matches!(
            rx.recv().expect("racer alive").result,
            RacerResult::Solved(_)
        ));
        let stats = pool.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.alive, 1);
    }

    #[test]
    fn invalid_solutions_are_rejected_before_reporting() {
        struct Liar;
        impl Scheduler for Liar {
            fn name(&self) -> &'static str {
                "Liar"
            }
            fn schedule_into(
                &self,
                chain: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                out: &mut Solution,
            ) -> bool {
                // Stage end == chain.len() is out of range: InvalidEnd.
                *out = Solution::new(vec![amp_core::Stage::new(
                    0,
                    chain.len(),
                    1,
                    amp_core::CoreType::Big,
                )]);
                true
            }
        }
        let pool = RacerPool::new(1, None);
        let rx = submit(&pool, Box::new(Liar));
        assert!(matches!(
            rx.recv().expect("reported").result,
            RacerResult::Failed
        ));
        assert_eq!(pool.stats().invalid, 1);
    }

    #[test]
    fn cancelled_jobs_are_skipped_without_running() {
        let pool = RacerPool::new(1, None);
        let (tx, rx) = channel::bounded(1);
        let cancel = Arc::new(AtomicBool::new(true));
        assert!(pool.try_submit(RacerJob {
            strategy: Box::new(Herad::new()),
            chain: chain(),
            resources: Resources::new(2, 2),
            generation: pool.next_generation(),
            cancel,
            reply: tx,
        }));
        // The skipped job never reports; the channel just disconnects.
        assert!(rx.recv().is_err());
        // A live job afterwards proves the skip did not wedge the thread.
        let rx = submit(&pool, Box::new(Fertac));
        assert!(matches!(
            rx.recv().expect("alive").result,
            RacerResult::Solved(_)
        ));
        let stats = pool.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.jobs_run, 1);
    }

    #[test]
    fn zero_thread_pool_refuses_jobs() {
        let pool = RacerPool::new(0, None);
        let (tx, _rx) = channel::bounded(1);
        assert!(!pool.try_submit(RacerJob {
            strategy: Box::new(Fertac),
            chain: chain(),
            resources: Resources::new(1, 1),
            generation: 0,
            cancel: Arc::new(AtomicBool::new(false)),
            reply: tx,
        }));
        assert_eq!(pool.stats().alive, 0);
    }

    #[test]
    fn generations_are_distinct_per_request() {
        let pool = RacerPool::new(0, None);
        let a = pool.next_generation();
        let b = pool.next_generation();
        assert_ne!(a, b);
    }
}
