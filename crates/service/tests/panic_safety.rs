//! Panic-safety suite: the engine's robustness contract under injected
//! faults, at scale.
//!
//! The contract (see the `engine` module docs): no accepted request is
//! ever dropped without a response, no response id is ever duplicated,
//! a panicking strategy yields a typed `INTERNAL` error (not a dead
//! worker), the worker pool stays at its configured size, incomplete or
//! invalid outcomes never enter the cache, and the metrics account for
//! every injected fault.
//!
//! Faults are injected through `EngineConfig::fault_wrap` — the same
//! seam the conformance chaos layer uses — with a deterministic
//! schedule: the wrapper decides per compute-call from a shared atomic
//! call counter, so a given (engine, request stream) pair always
//! injects the same faults.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amp_core::sched::{SchedScratch, Scheduler};
use amp_core::{Resources, Solution, Task, TaskChain};
use amp_service::{
    Engine, EngineConfig, Policy, PortfolioConfig, ScheduleRequest, ServiceError, StrategyWrap,
    TierFaultHook,
};
use crossbeam::channel;

/// Panics on every `period`-th compute call (1 = always), otherwise
/// delegates to the wrapped strategy.
struct PeriodicBomb {
    inner: Box<dyn Scheduler>,
    calls: Arc<AtomicU64>,
    period: u64,
}

impl Scheduler for PeriodicBomb {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.period) {
            panic!("chaos: injected panic on compute call {n}");
        }
        self.inner.schedule_into(chain, resources, scratch, out)
    }
}

/// Wraps every scheduler the engine runs in a [`PeriodicBomb`] sharing
/// one call counter. Returns the wrap and the counter (for accounting).
fn bomb_every(period: u64) -> (StrategyWrap, Arc<AtomicU64>) {
    let calls = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&calls);
    let wrap: StrategyWrap = Arc::new(move |inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
        Box::new(PeriodicBomb {
            inner,
            calls: Arc::clone(&calls),
            period,
        })
    });
    (wrap, counter)
}

/// A deterministic stream of distinct instances (splitmix-style PRNG),
/// so the chaos run exercises cache misses, not one cached answer.
fn chain_for(seed: u64) -> TaskChain {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let len = 1 + (next() % 10) as usize;
    let tasks = (0..len)
        .map(|_| {
            let wb = 1 + next() % 100;
            let slow = 1 + next() % 5;
            Task::new(wb, wb * slow, next() % 2 == 0)
        })
        .collect();
    TaskChain::new(tasks)
}

fn chaos_engine(workers: usize, wrap: StrategyWrap) -> Engine {
    Engine::start(EngineConfig {
        workers,
        racer_threads: workers * 2,
        queue_depth: 256,
        cache_capacity: 512,
        cache_shards: 4,
        portfolio: PortfolioConfig::default(),
        fault_wrap: Some(wrap),
        ..EngineConfig::default()
    })
}

/// The headline chaos run: ≥10k requests with a panic injected roughly
/// every 97th compute call, mixed policies. Every accepted request gets
/// exactly one response, every Ok outcome validates, the worker pool is
/// still at full strength afterwards, and `status_json` reports the
/// panics.
#[test]
fn chaos_run_loses_no_requests_and_restores_the_pool() {
    const REQUESTS: u64 = 10_000;
    let (wrap, calls) = bomb_every(97);
    let engine = chaos_engine(4, wrap);
    let (tx, rx) = channel::unbounded();

    let mut accepted = 0u64;
    for id in 0..REQUESTS {
        let chain = chain_for(id % 500);
        let policy = if id % 3 == 0 {
            Policy::Strategy("HeRAD".to_string())
        } else {
            Policy::Portfolio
        };
        let req = ScheduleRequest::from_chain(id, &chain, Resources::new(2, 2), policy);
        // Blocking submit: with live workers every request is accepted.
        engine.submit(req, tx.clone()).expect("accepted");
        accepted += 1;
    }
    drop(tx);

    let mut seen = HashSet::new();
    let mut internal_errors = 0u64;
    for response in rx.iter() {
        assert!(
            seen.insert(response.id),
            "duplicate response for id {}",
            response.id
        );
        match response.result {
            Ok(outcome) => {
                let chain = chain_for(response.id % 500);
                assert!(
                    outcome.solution().validate(&chain).is_ok(),
                    "served solution must validate (id {})",
                    response.id
                );
            }
            Err(ServiceError::Internal(msg)) => {
                assert!(msg.contains("panic"), "unexpected internal error: {msg}");
                internal_errors += 1;
            }
            Err(other) => panic!("unexpected error under chaos: {other:?}"),
        }
    }
    assert_eq!(seen.len() as u64, accepted, "no response may be lost");

    let m = engine.metrics();
    assert_eq!(m.responses, accepted);
    assert_eq!(m.workers_alive, 4, "pool must be restored to full size");
    assert!(
        calls.load(Ordering::Relaxed) >= REQUESTS,
        "chaos actually ran"
    );
    assert!(
        m.worker_panics + m.racer_panics > 0,
        "at least one fault must have fired"
    );
    assert_eq!(
        m.worker_panics, internal_errors,
        "every worker panic is a typed Internal response, and vice versa"
    );
    // The JSON snapshot carries the panic counts for dashboards.
    let json = engine.status_json();
    assert!(json.contains(&format!("\"worker_panics\":{}", m.worker_panics)));
    assert!(json.contains(&format!("\"racer_panics\":{}", m.racer_panics)));
    engine.shutdown();
}

/// Panic on *every* compute call: every single-strategy request comes
/// back as a typed `INTERNAL` error (never a hang, never a crash), and
/// the pool still answers cleanly once the chaos wrap stops firing.
#[test]
fn always_panicking_strategy_yields_all_internal_errors() {
    const REQUESTS: u64 = 200;
    // period 1 => every call panics; flip off via this shared switch.
    let armed = Arc::new(AtomicU64::new(1));
    let armed_in_wrap = Arc::clone(&armed);
    struct SwitchBomb {
        inner: Box<dyn Scheduler>,
        armed: Arc<AtomicU64>,
    }
    impl Scheduler for SwitchBomb {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn schedule_into(
            &self,
            chain: &TaskChain,
            resources: Resources,
            scratch: &mut SchedScratch,
            out: &mut Solution,
        ) -> bool {
            if self.armed.load(Ordering::Relaxed) == 1 {
                panic!("chaos: always panic");
            }
            self.inner.schedule_into(chain, resources, scratch, out)
        }
    }
    let wrap: StrategyWrap = Arc::new(move |inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
        Box::new(SwitchBomb {
            inner,
            armed: Arc::clone(&armed_in_wrap),
        })
    });
    let engine = chaos_engine(2, wrap);
    for id in 0..REQUESTS {
        let req = ScheduleRequest::from_chain(
            id,
            &chain_for(id),
            Resources::new(2, 2),
            Policy::Strategy("FERTAC".to_string()),
        );
        match engine.schedule_blocking(req).result {
            Err(ServiceError::Internal(_)) => {}
            other => panic!("expected Internal under total chaos, got {other:?}"),
        }
    }
    let m = engine.metrics();
    assert_eq!(m.worker_panics, REQUESTS);
    assert_eq!(m.workers_alive, 2, "pool recovered after every panic");
    // Disarm: the same engine, same workers, now serves normally.
    armed.store(0, Ordering::Relaxed);
    let ok = engine.schedule_blocking(ScheduleRequest::from_chain(
        REQUESTS,
        &chain_for(0),
        Resources::new(2, 2),
        Policy::Strategy("FERTAC".to_string()),
    ));
    assert!(
        ok.result.is_ok(),
        "engine must serve again once chaos stops"
    );
    engine.shutdown();
}

/// Racer-side chaos only: portfolio answers stay valid (inline FERTAC
/// carries them), are reported incomplete, and are never cached — a
/// replay of the same instance recomputes.
#[test]
fn racer_chaos_never_poisons_the_cache() {
    struct RacerBomb {
        inner: Box<dyn Scheduler>,
    }
    impl Scheduler for RacerBomb {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn schedule_into(
            &self,
            _: &TaskChain,
            _: Resources,
            _: &mut SchedScratch,
            _: &mut Solution,
        ) -> bool {
            panic!("chaos: racer down");
        }
    }
    // Kill HeRAD (the racer that certifies completeness); FERTAC inline
    // and the 2CATAC racer still answer.
    let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
        if inner.name() == "HeRAD" {
            Box::new(RacerBomb { inner })
        } else {
            inner
        }
    });
    let engine = chaos_engine(2, wrap);
    for round in 0..3 {
        for id in 0..50u64 {
            let chain = chain_for(id);
            let req = ScheduleRequest::from_chain(
                round * 100 + id,
                &chain,
                Resources::new(2, 2),
                Policy::Portfolio,
            );
            let outcome = engine.schedule_blocking(req).result.expect("feasible");
            assert!(!outcome.complete, "a dead racer must clear `complete`");
            assert!(
                !outcome.cache_hit,
                "incomplete outcomes must never be cached"
            );
            assert!(outcome.solution().validate(&chain).is_ok());
        }
    }
    assert_eq!(engine.cache_stats().insertions, 0);
    let m = engine.metrics();
    assert_eq!(m.portfolio_complete, 0);
    assert_eq!(m.portfolio_truncated, 150);
    assert_eq!(m.racer_panics, 150, "one HeRAD death per request");
    engine.shutdown();
}

/// Chain-tier chaos at scale: 10k HeRAD requests with panics injected
/// through the tier's own fault seam — during extraction, in-place
/// growth and cold solves, with extra pressure on the mutation sites.
/// The contract: every accepted request is answered exactly once, a
/// tier panic is a typed `INTERNAL` response (never a dead worker or a
/// wrong answer), an interrupted mutation poisons only its own entry
/// (the next request on that chain repairs it with a cold solve), and
/// the end-of-run counters reconcile: every request either hit, grew,
/// cold-solved, or died to an injected panic.
#[test]
fn tier_chaos_poisons_nothing_permanently_and_counters_reconcile() {
    const REQUESTS: u64 = 10_000;
    const CHAINS: u64 = 50;
    let armed = Arc::new(AtomicU64::new(1));
    let rolls = Arc::new(AtomicU64::new(0));
    let mutation_rolls = Arc::new(AtomicU64::new(0));
    let (armed_in_hook, rolls_in_hook, mutations_in_hook) = (
        Arc::clone(&armed),
        Arc::clone(&rolls),
        Arc::clone(&mutation_rolls),
    );
    let tier_fault: TierFaultHook = Arc::new(move |site: &'static str| {
        if armed_in_hook.load(Ordering::Relaxed) == 0 {
            return;
        }
        let n = rolls_in_hook.fetch_add(1, Ordering::Relaxed) + 1;
        // Mutation sites (grow / cold / snapshot) are rare next to
        // extractions, so they get their own denser schedule — the
        // valid-flag protocol is what this test exists to break.
        if site != "extract" {
            let m = mutations_in_hook.fetch_add(1, Ordering::Relaxed) + 1;
            if m.is_multiple_of(5) {
                panic!("chaos: tier fault at {site} (mutation roll {m})");
            }
        }
        if n.is_multiple_of(89) {
            panic!("chaos: tier fault at {site} (roll {n})");
        }
    });
    let engine = Engine::start(EngineConfig {
        workers: 4,
        racer_threads: 0,
        queue_depth: 256,
        // No exact-instance LRU: every request must face the tier.
        cache_capacity: 0,
        chain_capacity: 64,
        tier_fault: Some(tier_fault),
        ..EngineConfig::default()
    });
    let (tx, rx) = channel::unbounded();
    for id in 0..REQUESTS {
        let req = ScheduleRequest::from_chain(
            id,
            &chain_for(id % CHAINS),
            Resources::new(1 + id % 3, id % 4),
            Policy::Strategy("HeRAD".to_string()),
        );
        engine.submit(req, tx.clone()).expect("accepted");
    }
    drop(tx);

    let mut seen = HashSet::new();
    let mut internal_errors = 0u64;
    for response in rx.iter() {
        assert!(
            seen.insert(response.id),
            "duplicate response for id {}",
            response.id
        );
        match response.result {
            Ok(outcome) => {
                let chain = chain_for(response.id % CHAINS);
                assert!(
                    outcome.solution().validate(&chain).is_ok(),
                    "tier-served solution must validate (id {})",
                    response.id
                );
            }
            Err(ServiceError::Internal(msg)) => {
                assert!(msg.contains("panic"), "unexpected internal error: {msg}");
                internal_errors += 1;
            }
            Err(other) => panic!("unexpected error under tier chaos: {other:?}"),
        }
    }
    assert_eq!(seen.len() as u64, REQUESTS, "no response may be lost");

    let m = engine.metrics();
    assert_eq!(m.responses, REQUESTS);
    assert_eq!(m.workers_alive, 4, "pool must be restored to full size");
    assert!(internal_errors > 0, "chaos actually fired");
    assert_eq!(
        m.worker_panics, internal_errors,
        "every tier panic is a typed Internal response, and vice versa"
    );
    // Counter reconciliation: each serve bumps exactly one of
    // hits/grows/cold_solves on success and none when the injected
    // panic aborts it.
    let t = engine.tier_stats();
    assert_eq!(
        t.hits + t.grows + t.cold_solves + internal_errors,
        REQUESTS,
        "tier counters must account for every request: {t:?}"
    );
    assert!(
        t.repairs > 0,
        "interrupted mutations must have been repaired: {t:?}"
    );

    // Disarm the chaos: the tier must now serve every chain at the full
    // pool bit-identically to a fresh HeRAD solve — no entry is left
    // wedged, poisoned entries repair transparently.
    armed.store(0, Ordering::Relaxed);
    let herad = amp_core::sched::Herad::new();
    for id in 0..CHAINS {
        let chain = chain_for(id);
        let pool = Resources::new(3, 3);
        let req = ScheduleRequest::from_chain(
            REQUESTS + id,
            &chain,
            pool,
            Policy::Strategy("HeRAD".to_string()),
        );
        let outcome = engine.schedule_blocking(req).result.expect("feasible");
        let fresh = herad.schedule(&chain, pool).expect("feasible");
        assert_eq!(
            outcome.solution(),
            fresh,
            "post-chaos tier answer must be bit-identical (chain {id})"
        );
    }
    engine.shutdown();
}

/// Snapshot-write chaos: a panic injected between the temp-file write
/// and the rename must leave the previous snapshot byte-identical on
/// disk and the tier fully serviceable — saving again after the fault
/// clears succeeds.
#[test]
fn snapshot_write_panic_never_corrupts_the_previous_snapshot() {
    let armed = Arc::new(AtomicU64::new(0));
    let armed_in_hook = Arc::clone(&armed);
    let tier_fault: TierFaultHook = Arc::new(move |site: &'static str| {
        if site == "snapshot" && armed_in_hook.load(Ordering::Relaxed) == 1 {
            panic!("chaos: die between snapshot write and rename");
        }
    });
    let engine = Engine::start(EngineConfig {
        workers: 1,
        racer_threads: 0,
        queue_depth: 8,
        tier_fault: Some(tier_fault),
        ..EngineConfig::default()
    });
    let chain = chain_for(7);
    for (id, pool) in [(1, 1), (2, 2), (3, 3)].iter().enumerate() {
        let req = ScheduleRequest::from_chain(
            id as u64,
            &chain,
            Resources::new(pool.0, pool.1),
            Policy::Strategy("HeRAD".to_string()),
        );
        assert!(engine.schedule_blocking(req).result.is_ok());
    }
    let path = std::env::temp_dir().join(format!("amp-snapshot-chaos-{}.json", std::process::id()));
    assert_eq!(engine.save_tier_snapshot(&path).expect("clean save"), 1);
    let before = std::fs::read(&path).expect("snapshot exists");

    armed.store(1, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.save_tier_snapshot(&path)
    }));
    assert!(result.is_err(), "the injected snapshot panic must fire");
    assert_eq!(
        std::fs::read(&path).expect("snapshot still exists"),
        before,
        "an interrupted save must leave the previous snapshot untouched"
    );

    armed.store(0, Ordering::Relaxed);
    assert_eq!(engine.save_tier_snapshot(&path).expect("save again"), 1);
    // The tier itself was never touched by the failed save: pure hits.
    let req = ScheduleRequest::from_chain(
        99,
        &chain,
        Resources::new(2, 2),
        Policy::Strategy("HeRAD".to_string()),
    );
    assert!(engine.schedule_blocking(req).result.is_ok());
    assert_eq!(engine.tier_stats().repairs, 0);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("json.tmp")).ok();
    engine.shutdown();
}
