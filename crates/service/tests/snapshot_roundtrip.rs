//! Property suite for chain-tier snapshot persistence.
//!
//! Two contracts, pinned over randomized instances:
//!
//! * **Round trip** — a tier saved to disk and loaded into a fresh tier
//!   answers every instance bit-identically to the original (and to a
//!   fresh HeRAD solve) without a single cold solve: persistence must
//!   be lossless, not merely "close enough".
//! * **Corruption** — any truncation or single-byte mutation of a
//!   snapshot is rejected with a typed [`SnapshotError`], installs
//!   nothing (all-or-nothing), and leaves the tier serving clean
//!   misses. A bad file on disk must never panic, never half-load, and
//!   never produce a wrong answer.

use std::sync::atomic::{AtomicU64, Ordering};

use amp_core::sched::{Herad, Scheduler};
use amp_core::{Resources, Solution, Task, TaskChain};
use amp_service::{ChainTier, SnapshotError, TaskSpec};
use proptest::prelude::*;

fn key(chain: &TaskChain) -> Vec<TaskSpec> {
    chain.tasks().iter().map(TaskSpec::from).collect()
}

/// Random instances shaped like the paper's synthetic generator, kept
/// small so the property runs stay fast: a few chains, each served
/// under a few pool shapes.
fn workload() -> impl Strategy<Value = Vec<(TaskChain, Vec<Resources>)>> {
    let task = (1u64..=60, 1u64..=5, any::<bool>())
        .prop_map(|(wb, slow, rep)| Task::new(wb, wb * slow, rep));
    let pools = prop::collection::vec((0u64..=3, 0u64..=3), 1..=4).prop_map(|ps| {
        ps.into_iter()
            .map(|(b, l)| Resources::new(b, l))
            .collect::<Vec<_>>()
    });
    let chain = prop::collection::vec(task, 1..=8).prop_map(TaskChain::new);
    prop::collection::vec((chain, pools), 1..=3)
}

/// A per-process-unique snapshot path; proptest cases reuse the test
/// thread, so a counter keeps concurrent test binaries and cases apart.
fn scratch_path() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "amp-snapshot-prop-{}-{}.json",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Drives `workload` through `tier`, returning each serve's answer
/// (`None` = infeasible) in a stable order.
fn serve_all(tier: &ChainTier, workload: &[(TaskChain, Vec<Resources>)]) -> Vec<Option<Solution>> {
    let mut answers = Vec::new();
    let mut out = Solution::empty();
    for (chain, pools) in workload {
        let k = key(chain);
        for &pool in pools {
            let (_, feasible) = tier.serve(&k, chain, pool, &mut out);
            answers.push(feasible.then(|| out.clone()));
        }
    }
    answers
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Save → load → identical answers, with zero cold solves after the
    /// restore, and a byte-stable snapshot (saving the restored tier
    /// reproduces the file).
    #[test]
    fn snapshot_round_trip_is_lossless(workload in workload()) {
        let path = scratch_path();
        let tier = ChainTier::new(16, None);
        let original = serve_all(&tier, &workload);
        let written = tier.save_to(&path).expect("save must succeed");
        prop_assert!(written >= 1);

        let restored = ChainTier::new(16, None);
        let loaded = restored.load_from(&path).expect("load must succeed");
        prop_assert_eq!(loaded, written, "every table must come back");
        let replay = serve_all(&restored, &workload);
        prop_assert_eq!(&replay, &original, "restored answers must be bit-identical");
        let stats = restored.stats();
        prop_assert_eq!(stats.cold_solves, 0, "a warm tier never solves cold: {:?}", stats);
        prop_assert_eq!(stats.snapshot_loaded as usize, written);

        // And the answers are still exactly HeRAD's.
        let mut i = 0;
        for (chain, pools) in &workload {
            for &pool in pools {
                prop_assert_eq!(&replay[i], &Herad::new().schedule(chain, pool));
                i += 1;
            }
        }

        // Byte stability: an equal tier writes an equal snapshot.
        let before = std::fs::read(&path).expect("snapshot exists");
        let echo = scratch_path();
        restored.save_to(&echo).expect("re-save must succeed");
        prop_assert_eq!(std::fs::read(&echo).expect("echo exists"), before);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&echo).ok();
    }

    /// Truncating a snapshot anywhere yields a typed error, installs no
    /// tables, and leaves the tier fully serviceable (clean misses).
    #[test]
    fn truncated_snapshots_are_clean_misses(
        workload in workload(),
        cut_milli in 0u64..1000,
    ) {
        let tier = ChainTier::new(16, None);
        serve_all(&tier, &workload);
        let doc = amp_service::chain_tier::snapshot_doc(tier.snapshot_tables());
        let text = doc.render_compact();
        let cut = (text.len() as u64 * cut_milli / 1000) as usize;
        let truncated: String = text.chars().take(cut).collect();

        let victim = ChainTier::new(16, None);
        let err = victim
            .load_snapshot_text(&truncated)
            .expect_err("a truncated snapshot must be rejected");
        prop_assert!(
            matches!(
                err,
                SnapshotError::Parse { .. }
                    | SnapshotError::Malformed { .. }
                    | SnapshotError::Version { .. }
            ),
            "unexpected error shape: {err:?}"
        );
        let stats = victim.stats();
        prop_assert_eq!(stats.snapshot_loaded, 0, "all-or-nothing: nothing installs");
        prop_assert_eq!(stats.snapshot_rejected, 1);
        prop_assert_eq!(stats.entries, 0);
        // Clean miss: the tier still answers, bit-identically to HeRAD.
        let (chain, pools) = &workload[0];
        let pool = pools[0];
        let mut out = Solution::empty();
        let (_, feasible) = victim.serve(&key(chain), chain, pool, &mut out);
        prop_assert_eq!(feasible.then_some(out), Herad::new().schedule(chain, pool));
    }

    /// Flipping any single byte of a snapshot is detected — by the
    /// parser, the header checks or the per-table checksum — and never
    /// panics or installs a damaged table.
    #[test]
    fn single_byte_corruption_is_always_detected(
        workload in workload(),
        pos_milli in 0u64..1000,
        flip in 1u8..=255,
    ) {
        let tier = ChainTier::new(16, None);
        serve_all(&tier, &workload);
        let doc = amp_service::chain_tier::snapshot_doc(tier.snapshot_tables());
        let mut bytes = doc.render_compact().into_bytes();
        let pos = (bytes.len() as u64 * pos_milli / 1000) as usize % bytes.len();
        bytes[pos] ^= flip;

        let victim = ChainTier::new(16, None);
        // A flip that breaks UTF-8 would never survive a file read as a
        // string, so only valid-UTF-8 mutations reach the loader.
        if let Ok(text) = String::from_utf8(bytes) {
            let err = victim
                .load_snapshot_text(&text)
                .expect_err("a corrupted snapshot must be rejected");
            prop_assert!(
                matches!(
                    err,
                    SnapshotError::Parse { .. }
                        | SnapshotError::Malformed { .. }
                        | SnapshotError::Version { .. }
                ),
                "unexpected error shape: {err:?}"
            );
        }
        prop_assert_eq!(victim.stats().entries, 0);
    }

    /// A version or kind skew — the bytes a *future* amp-service would
    /// write — is rejected with the typed `Version` error specifically,
    /// so operators can tell "stale binary" from "disk corruption".
    #[test]
    fn version_skew_is_a_typed_version_error(workload in workload()) {
        let tier = ChainTier::new(16, None);
        serve_all(&tier, &workload);
        let doc = amp_service::chain_tier::snapshot_doc(tier.snapshot_tables());
        let text = doc.render_compact();

        let skewed = text.replacen("\"version\":1", "\"version\":2", 1);
        prop_assert_ne!(&skewed, &text, "snapshot must carry its version");
        let victim = ChainTier::new(16, None);
        match victim.load_snapshot_text(&skewed) {
            Err(SnapshotError::Version { found }) => {
                prop_assert!(found.contains('2'), "found: {found}")
            }
            other => prop_assert!(false, "expected Version error, got {other:?}"),
        }

        let rekinded = text.replacen("amp-chain-tier-snapshot", "amp-something-else", 1);
        match victim.load_snapshot_text(&rekinded) {
            Err(SnapshotError::Version { .. }) => {}
            other => prop_assert!(false, "expected Version error, got {other:?}"),
        }
        prop_assert_eq!(victim.stats().entries, 0);
    }
}
