//! Steady-state portfolio requests must spawn no OS threads: the racer
//! pool is persistent, so after `Engine::start` the thread population
//! is fixed.
//!
//! This file deliberately holds a single test so the integration-test
//! binary runs it alone in its own process — that makes the
//! `/proc/self/status` thread census deterministic (no sibling tests
//! spawning engines concurrently).

use amp_core::{Resources, Task, TaskChain};
use amp_service::{Engine, EngineConfig, Policy, PortfolioConfig, ScheduleRequest};

fn chain_for(seed: u64) -> TaskChain {
    let len = 1 + (seed % 9) as usize;
    let tasks = (0..len as u64)
        .map(|i| {
            let wb = 1 + (seed * 31 + i * 7) % 100;
            Task::new(wb, wb * (1 + (seed + i) % 4), (seed + i).is_multiple_of(2))
        })
        .collect();
    TaskChain::new(tasks)
}

/// Current thread count of this process, from the kernel's census.
#[cfg(target_os = "linux")]
fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[cfg(not(target_os = "linux"))]
fn os_thread_count() -> Option<u64> {
    None
}

#[test]
fn warm_portfolio_requests_spawn_no_new_threads() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        racer_threads: 4,
        queue_depth: 64,
        cache_capacity: 64,
        cache_shards: 2,
        portfolio: PortfolioConfig::default(),
        fault_wrap: None,
        ..EngineConfig::default()
    });
    // Warm-up: first contact with every chain shape, filling the cache
    // and growing each worker/racer scratch arena to its final size.
    for id in 0..100u64 {
        let req = ScheduleRequest::from_chain(
            id,
            &chain_for(id % 20),
            Resources::new(2, 2),
            Policy::Portfolio,
        );
        engine.schedule_blocking(req).result.expect("feasible");
    }

    let spawned_before = engine.metrics().threads_spawned;
    assert_eq!(
        spawned_before, 6,
        "2 workers + 4 racers, created once at startup"
    );
    let os_before = os_thread_count();

    // The measured steady-state run: a mix of cache hits (repeat shapes)
    // and fresh computes (new shapes), all through the portfolio.
    for id in 100..2100u64 {
        let req = ScheduleRequest::from_chain(
            id,
            &chain_for(id % 40),
            Resources::new(2, 2),
            Policy::Portfolio,
        );
        engine.schedule_blocking(req).result.expect("feasible");
    }

    let m = engine.metrics();
    assert_eq!(
        m.threads_spawned, spawned_before,
        "steady-state requests must not create OS threads"
    );
    assert_eq!(m.spawn_failures, 0);
    assert_eq!(m.workers_alive, 2);
    if let (Some(before), Some(after)) = (os_before, os_thread_count()) {
        assert_eq!(
            after, before,
            "kernel thread census must agree: no threads appeared or died"
        );
    }
    engine.shutdown();
}
