//! Property-based tests for the scheduling service: cache soundness and
//! portfolio deadline semantics.
//!
//! Cache soundness means a hit is indistinguishable from a fresh compute:
//! same exact period string, same decomposition, same stages, same core
//! usage — only the `cache_hit` flag differs. Portfolio semantics mean an
//! unlimited deadline yields HeRAD's optimal period, while an
//! already-expired deadline still yields a valid FERTAC-or-better
//! solution and never an error.

use std::time::Instant;

use amp_core::sched::{Herad, SchedScratch, Scheduler};
use amp_core::{Resources, Task, TaskChain};
use amp_service::{
    portfolio, CacheKey, Engine, EngineConfig, Policy, PortfolioConfig, RacerPool, ScheduleRequest,
    SolutionCache,
};
use proptest::prelude::*;

/// A random instance shaped like the paper's synthetic generator: big
/// weights uniform, little = big × slowdown, mixed replicability.
fn instance() -> impl Strategy<Value = (TaskChain, Resources)> {
    let task = (1u64..=100, 1u64..=5, any::<bool>())
        .prop_map(|(wb, slow, rep)| Task::new(wb, wb * slow, rep));
    (prop::collection::vec(task, 1..=12), 0u64..=6, 0u64..=6)
        .prop_filter("need at least one core", |(_, b, l)| b + l > 0)
        .prop_map(|(tasks, b, l)| (TaskChain::new(tasks), Resources::new(b, l)))
}

fn small_engine() -> Engine {
    Engine::start(EngineConfig {
        workers: 2,
        racer_threads: 4,
        queue_depth: 32,
        cache_capacity: 256,
        cache_shards: 4,
        portfolio: PortfolioConfig::default(),
        fault_wrap: None,
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Cache soundness through the full engine: the second identical
    /// request is served from the cache and is bit-identical to the
    /// fresh compute, `cache_hit` flag aside.
    #[test]
    fn cache_hit_is_bit_identical_to_fresh_compute((chain, res) in instance()) {
        let engine = small_engine();
        let req = ScheduleRequest::from_chain(1, &chain, res, Policy::Portfolio);
        let fresh = engine.schedule_blocking(req.clone());
        let replay = engine.schedule_blocking(ScheduleRequest { id: 2, ..req });
        match (fresh.result, replay.result) {
            (Ok(a), Ok(b)) => {
                prop_assert!(!a.cache_hit);
                prop_assert!(b.cache_hit, "second identical request must hit");
                prop_assert_eq!(&a.period, &b.period);
                prop_assert_eq!(a.period_f64.to_bits(), b.period_f64.to_bits());
                prop_assert_eq!(&a.decomposition, &b.decomposition);
                prop_assert_eq!(&a.stages, &b.stages);
                prop_assert_eq!(a.used_big, b.used_big);
                prop_assert_eq!(a.used_little, b.used_little);
                // The replayed stages must still be a valid schedule.
                prop_assert!(b.solution().validate(&chain).is_ok());
            }
            (a, b) => prop_assert_eq!(a, b, "errors must replay identically"),
        }
    }

    /// Equal fingerprint material ⇒ equal keys ⇒ the cache returns the
    /// stored outcome for either request, regardless of id or deadline.
    #[test]
    fn equal_fingerprints_are_schedule_equivalent((chain, res) in instance()) {
        let a = ScheduleRequest::from_chain(7, &chain, res, Policy::Portfolio);
        let b = ScheduleRequest::from_chain(99, &chain, res, Policy::Portfolio)
            .with_deadline_us(1_000_000);
        let (ka, kb) = (CacheKey::for_request(&a), CacheKey::for_request(&b));
        prop_assert_eq!(&ka, &kb);
        prop_assert_eq!(ka.fingerprint(), kb.fingerprint());

        let pool = RacerPool::new(2, None);
        let out = portfolio::run(&chain, res, None, &PortfolioConfig::default(), &mut SchedScratch::new(), &pool);
        prop_assume!(out.is_some());
        let out = out.unwrap();
        let outcome = amp_service::ScheduleOutcome::from_solution(
            out.strategy, &out.solution, &chain, out.complete,
        );
        let cache = SolutionCache::new(16, 2);
        cache.insert(ka, outcome.clone());
        let via_b = cache.get(&kb).expect("same instance must hit");
        prop_assert_eq!(&via_b.period, &outcome.period);
        prop_assert_eq!(&via_b.stages, &outcome.stages);
    }

    /// Unlimited deadline: the portfolio waits for HeRAD, so its period
    /// is the instance's optimum.
    #[test]
    fn unlimited_deadline_is_herad_optimal((chain, res) in instance()) {
        let pool = RacerPool::new(2, None);
        let out = portfolio::run(&chain, res, None, &PortfolioConfig::default(), &mut SchedScratch::new(), &pool)
            .expect("at least one core is available");
        prop_assert!(out.complete);
        let opt = Herad::new().optimal_period(&chain, res).unwrap();
        prop_assert_eq!(out.period, opt);
        prop_assert!(out.solution.validate(&chain).is_ok());
        prop_assert!(out.solution.is_valid(&chain, res, out.period));
    }

    /// Already-expired deadline: still a valid solution (FERTAC ran
    /// inline), never an error, and never worse than FERTAC alone.
    #[test]
    fn tight_deadline_is_valid_and_fertac_or_better((chain, res) in instance()) {
        let deadline = Some(Instant::now());
        let pool = RacerPool::new(2, None);
        let out = portfolio::run(&chain, res, deadline, &PortfolioConfig::default(), &mut SchedScratch::new(), &pool)
            .expect("FERTAC always answers feasible instances");
        prop_assert!(out.solution.validate(&chain).is_ok());
        prop_assert!(out.solution.is_valid(&chain, res, out.period));
        let fertac = amp_core::sched::Fertac
            .schedule(&chain, res)
            .expect("feasible");
        prop_assert!(out.period <= fertac.period(&chain));
    }
}
