//! Property-based tests for the scheduling strategies.
//!
//! The central oracle is exhaustive search on tiny instances: HeRAD must
//! match its period exactly (Theorem 1), and its core usage must be
//! Pareto-optimal among all minimum-period solutions (the secondary
//! objective). The heuristics must always produce valid schedules with
//! periods no better than optimal.

use amp_core::sched::{
    brute::all_optimal_solutions, BruteForce, Fertac, Herad, Otac, Pruning, Scheduler, Twocatac,
};
use amp_core::{Ratio, Resources, Task, TaskChain};
use proptest::prelude::*;

/// A tiny random instance: up to 6 tasks, weights like the paper's
/// synthetic generator (big uniform, little = big × slowdown).
fn tiny_instance() -> impl Strategy<Value = (TaskChain, Resources)> {
    let task = (1u64..=20, 1u64..=5, any::<bool>())
        .prop_map(|(wb, slow, rep)| Task::new(wb, wb * slow, rep));
    (prop::collection::vec(task, 1..=6), 0u64..=3, 0u64..=3)
        .prop_filter("need at least one core", |(_, b, l)| b + l > 0)
        .prop_map(|(tasks, b, l)| (TaskChain::new(tasks), Resources::new(b, l)))
}

/// A mid-size random instance for heuristic validity (no brute force).
fn mid_instance() -> impl Strategy<Value = (TaskChain, Resources)> {
    let task = (1u64..=100, 1u64..=5, any::<bool>())
        .prop_map(|(wb, slow, rep)| Task::new(wb, wb * slow, rep));
    (prop::collection::vec(task, 1..=20), 0u64..=8, 0u64..=8)
        .prop_filter("need at least one core", |(_, b, l)| b + l > 0)
        .prop_map(|(tasks, b, l)| (TaskChain::new(tasks), Resources::new(b, l)))
}

proptest! {
    /// Theorem 1, primary objective: HeRAD's period equals the exhaustive
    /// optimum.
    #[test]
    fn herad_period_is_optimal((chain, res) in tiny_instance()) {
        let brute = BruteForce.schedule(&chain, res).unwrap();
        let herad = Herad::new().schedule(&chain, res).unwrap();
        prop_assert!(herad.validate(&chain).is_ok(), "{herad}");
        prop_assert_eq!(
            herad.period(&chain),
            brute.period(&chain),
            "HeRAD {} vs brute {}", herad, brute
        );
    }

    /// Theorem 1, secondary objective: no minimum-period solution strictly
    /// dominates HeRAD's core usage (fewer of one type, no more of the
    /// other).
    #[test]
    fn herad_core_usage_is_pareto_optimal((chain, res) in tiny_instance()) {
        let herad = Herad::new().schedule(&chain, res).unwrap();
        let hu = herad.used_cores();
        for other in all_optimal_solutions(&chain, res) {
            if other.period(&chain) != herad.period(&chain) {
                continue;
            }
            let ou = other.used_cores();
            let dominates = (ou.big < hu.big && ou.little <= hu.little)
                || (ou.big <= hu.big && ou.little < hu.little);
            prop_assert!(
                !dominates,
                "{} ({}B,{}L) dominated by {} ({}B,{}L)",
                herad, hu.big, hu.little, other, ou.big, ou.little
            );
        }
    }

    /// The lossless pruning is bit-for-bit identical to the unpruned DP
    /// (period and tie-broken core usage); the aggressive pruning keeps the
    /// period optimal.
    #[test]
    fn herad_prunings_agree((chain, res) in tiny_instance()) {
        let none = Herad::with_pruning(Pruning::None).schedule(&chain, res).unwrap();
        let lossless = Herad::with_pruning(Pruning::Lossless).schedule(&chain, res).unwrap();
        let aggressive = Herad::with_pruning(Pruning::Aggressive).schedule(&chain, res).unwrap();
        prop_assert_eq!(none.period(&chain), lossless.period(&chain));
        prop_assert_eq!(none.used_cores(), lossless.used_cores());
        prop_assert_eq!(none.period(&chain), aggressive.period(&chain));
    }

    /// Heuristics always produce structurally valid schedules within the
    /// resource budget, never beating the optimal period.
    #[test]
    fn heuristics_are_valid_and_never_beat_herad((chain, res) in mid_instance()) {
        let opt = Herad::new().optimal_period(&chain, res).unwrap();
        for sched in [&Fertac as &dyn Scheduler, &Twocatac::new()] {
            let s = sched.schedule(&chain, res).unwrap();
            prop_assert!(s.validate(&chain).is_ok(), "{}: {}", sched.name(), s);
            let used = s.used_cores();
            prop_assert!(used.big <= res.big && used.little <= res.little);
            prop_assert!(
                s.period(&chain) >= opt,
                "{} period {} beats optimal {}", sched.name(), s.period(&chain), opt
            );
        }
    }

    /// OTAC restricted to one core type matches HeRAD on a pool that only
    /// has that type (both are optimal on homogeneous resources).
    #[test]
    fn otac_is_optimal_on_homogeneous_pools((chain, res) in mid_instance()) {
        if res.big > 0 {
            let otac = Otac::big().schedule(&chain, res).unwrap();
            let opt = Herad::new()
                .optimal_period(&chain, Resources::new(res.big, 0))
                .unwrap();
            prop_assert_eq!(otac.period(&chain), opt, "OTAC(B) {} at {}", otac, res);
        }
        if res.little > 0 {
            let otac = Otac::little().schedule(&chain, res).unwrap();
            let opt = Herad::new()
                .optimal_period(&chain, Resources::new(0, res.little))
                .unwrap();
            prop_assert_eq!(otac.period(&chain), opt, "OTAC(L) {} at {}", otac, res);
        }
    }

    /// Merging consecutive replicable same-type stages never increases the
    /// period and preserves validity.
    #[test]
    fn merging_preserves_validity_and_period((chain, res) in mid_instance()) {
        for sched in [&Fertac as &dyn Scheduler, &Twocatac::new()] {
            let s = sched.schedule(&chain, res).unwrap();
            let m = s.merged_replicable_stages(&chain);
            prop_assert!(m.validate(&chain).is_ok());
            prop_assert!(m.period(&chain) <= s.period(&chain));
            prop_assert_eq!(m.used_cores(), s.used_cores());
        }
    }

    /// Periods are invariant under weight scaling (rationals are exact).
    #[test]
    fn period_scales_linearly((chain, res) in tiny_instance(), k in 1u64..=7) {
        let scaled = TaskChain::new(
            chain
                .tasks()
                .iter()
                .map(|t| Task::new(t.weight_big * k, t.weight_little * k, t.replicable))
                .collect(),
        );
        let p1 = Herad::new().optimal_period(&chain, res).unwrap();
        let p2 = Herad::new().optimal_period(&scaled, res).unwrap();
        prop_assert_eq!(
            Ratio::new(p1.numer() * u128::from(k), p1.denom()),
            p2
        );
    }

    /// Adding resources never makes the optimal period worse.
    #[test]
    fn more_resources_never_hurt((chain, res) in tiny_instance()) {
        let p = Herad::new().optimal_period(&chain, res).unwrap();
        let pb = Herad::new()
            .optimal_period(&chain, Resources::new(res.big + 1, res.little))
            .unwrap();
        let pl = Herad::new()
            .optimal_period(&chain, Resources::new(res.big, res.little + 1))
            .unwrap();
        prop_assert!(pb <= p);
        prop_assert!(pl <= p);
    }

    /// The optimal period is bounded below by the work/cores bound and the
    /// heaviest sequential task on its fastest core.
    #[test]
    fn optimal_period_respects_lower_bounds((chain, res) in tiny_instance()) {
        let p = Herad::new().optimal_period(&chain, res).unwrap();
        let mut sum_best = 0u128;
        let mut max_seq = 0u64;
        for t in chain.tasks() {
            let w = match (res.big > 0, res.little > 0) {
                (true, true) => t.weight_big.min(t.weight_little),
                (true, false) => t.weight_big,
                (false, _) => t.weight_little,
            };
            sum_best += u128::from(w);
            if !t.replicable {
                max_seq = max_seq.max(w);
            }
        }
        prop_assert!(p >= Ratio::new(sum_best, u128::from(res.total())));
        prop_assert!(p >= Ratio::from_int(max_seq));
    }

    /// Every stage of a HeRAD schedule is weight-bounded by the period and
    /// replicated stages only appear on replicable intervals.
    #[test]
    fn herad_stages_are_consistent((chain, res) in mid_instance()) {
        let s = Herad::new().schedule(&chain, res).unwrap();
        let p = s.period(&chain);
        for st in s.stages() {
            prop_assert!(st.weight(&chain) <= p);
            if st.cores > 1 {
                prop_assert!(chain.is_replicable(st.start, st.end));
                prop_assert_eq!(st.core_type, st.core_type);
            }
        }
    }
}

/// Deterministic regression instances distilled from early proptest runs
/// and paper examples.
#[test]
fn regression_known_instances() {
    // Fully sequential chain: pipeline stages are forced to single cores.
    let c = TaskChain::new(vec![
        Task::new(5, 10, false),
        Task::new(5, 10, false),
        Task::new(5, 10, false),
    ]);
    let s = Herad::new().schedule(&c, Resources::new(3, 3)).unwrap();
    assert_eq!(s.period(&c), Ratio::from_int(5));
    assert_eq!(s.used_cores().big, 3);

    // Fully replicable chain on mixed resources: the optimum splits the
    // chain between core types in proportion to their speed.
    let c = TaskChain::new(vec![Task::new(6, 12, true), Task::new(6, 12, true)]);
    let s = Herad::new().schedule(&c, Resources::new(1, 2)).unwrap();
    // 12 units of big-work; with 1 big and 2 little: give tasks to big at
    // weight w_b = x/1 and little w_l = (24 - 2x)/2 ... exhaustively the
    // optimum is 8: big stage [0,0] (6) and little stage [1,1] on 2 cores
    // (12/2 = 6) -> period 6.
    assert_eq!(s.period(&c), Ratio::from_int(6));

    // One-task chain, one little core.
    let c = TaskChain::new(vec![Task::new(7, 9, false)]);
    let s = Herad::new().schedule(&c, Resources::new(0, 1)).unwrap();
    assert_eq!(s.period(&c), Ratio::from_int(9));
    assert_eq!(s.num_stages(), 1);
}

/// HeRAD against brute force on an exhaustive grid of small instances —
/// deterministic complement to the random property tests.
#[test]
fn herad_matches_brute_force_on_grid() {
    // All replicability patterns of a 4-task chain with fixed weights.
    let wb = [3u64, 7, 2, 5];
    let wl = [6u64, 14, 10, 5];
    for mask in 0u32..16 {
        let tasks: Vec<Task> = (0..4)
            .map(|i| Task::new(wb[i], wl[i], mask & (1 << i) != 0))
            .collect();
        let chain = TaskChain::new(tasks);
        for (b, l) in [(1, 1), (2, 1), (1, 2), (2, 2), (3, 0), (0, 3)] {
            let res = Resources::new(b, l);
            let brute = BruteForce.schedule(&chain, res).unwrap();
            let herad = Herad::new().schedule(&chain, res).unwrap();
            assert_eq!(
                herad.period(&chain),
                brute.period(&chain),
                "mask {mask:04b} at {res}: HeRAD {herad} vs brute {brute}"
            );
        }
    }
}
