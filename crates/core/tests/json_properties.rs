//! Property tests for the canonical JSON codec: both renderers round-trip
//! through `parse` for arbitrary nested values, canonical output is a
//! rendering fixpoint, and the parser never panics on arbitrary input.

use amp_core::json::Json;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strings drawn from a deliberately hostile alphabet: quotes, escapes,
/// control characters, multi-byte scalars.
fn string_value() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x500, 0..8).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

fn leaf() -> impl Strategy<Value = Json> {
    (0u8..4, any::<u64>(), any::<bool>(), string_value()).prop_map(|(kind, n, b, s)| match kind {
        0 => Json::Null,
        1 => Json::Bool(b),
        2 => Json::Int(n),
        _ => Json::Str(s),
    })
}

/// One composition layer: wrap previously generated values in an array or
/// object, or pass a leaf through unchanged.
fn layer(inner: impl Strategy<Value = Json>) -> impl Strategy<Value = Json> {
    (
        0u8..3,
        prop::collection::vec((string_value(), inner), 0..5),
        leaf(),
    )
        .prop_map(|(kind, entries, passthrough)| match kind {
            0 => Json::Arr(entries.into_iter().map(|(_, v)| v).collect()),
            1 => Json::Obj(entries.into_iter().collect::<BTreeMap<_, _>>()),
            _ => passthrough,
        })
}

/// Values nested up to three containers deep.
fn json_value() -> impl Strategy<Value = Json> {
    layer(layer(layer(leaf())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The indented renderer round-trips and is a fixpoint.
    #[test]
    fn render_round_trips(v in json_value()) {
        let rendered = v.render();
        let parsed = Json::parse(&rendered).expect("canonical output must parse");
        prop_assert_eq!(&parsed, &v);
        prop_assert_eq!(parsed.render(), rendered, "rendering must be a fixpoint");
    }

    /// The compact renderer round-trips, is a fixpoint, and never emits a
    /// raw newline (one value == one wire line).
    #[test]
    fn compact_render_round_trips(v in json_value()) {
        let compact = v.render_compact();
        prop_assert!(!compact.contains('\n'), "wire form must stay on one line: {compact:?}");
        let parsed = Json::parse(&compact).expect("compact output must parse");
        prop_assert_eq!(&parsed, &v);
        prop_assert_eq!(parsed.render_compact(), compact);
    }

    /// Both renderers agree on the value they encode.
    #[test]
    fn renderers_agree(v in json_value()) {
        let a = Json::parse(&v.render()).expect("render parses");
        let b = Json::parse(&v.render_compact()).expect("compact parses");
        prop_assert_eq!(a, b);
    }

    /// The parser returns an error — never panics — on arbitrary input.
    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(text);
        }
    }

    /// Truncation detection: a document whose top level is a container
    /// ends with its closing bracket, so every strict prefix must fail to
    /// parse (and never panic). This is what lets the wire layer treat
    /// "line parsed" as "frame complete".
    #[test]
    fn truncated_documents_are_rejected((v, cut) in (json_value(), 0usize..4096)) {
        let rendered = Json::Arr(vec![v]).render_compact();
        let cut = 1 + cut % (rendered.len() - 1);
        if !rendered.is_char_boundary(cut) {
            return Ok(());
        }
        prop_assert!(
            Json::parse(&rendered[..cut]).is_err(),
            "strict prefix {:?} must not parse",
            &rendered[..cut]
        );
    }
}
