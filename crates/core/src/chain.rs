//! Task chains: the workload model of Section III of the paper.
//!
//! A [`TaskChain`] is a linear sequence of tasks, each with one latency per
//! core type and a replicability flag. The chain precomputes prefix sums of
//! the weights and a "next sequential task" index so that interval weights
//! and replicability queries (`IsRep`, `FinalRepTask` in Algorithm 3) are
//! O(1).

use crate::ratio::Ratio;
use crate::resources::CoreType;
use serde::{Deserialize, Serialize};

/// One task of a chain: its latency on each core type and whether it may be
/// replicated (stateless) or not (stateful).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name (task ids in synthetic chains, block names in the
    /// DVB-S2 chain).
    pub name: String,
    /// Computation weight (latency) on a big core, in abstract time units.
    pub weight_big: u64,
    /// Computation weight (latency) on a little core.
    pub weight_little: u64,
    /// `true` for stateless (replicable) tasks, `false` for stateful
    /// (sequential) ones.
    pub replicable: bool,
}

impl Task {
    /// Convenience constructor with an auto-generated name.
    #[must_use]
    pub fn new(weight_big: u64, weight_little: u64, replicable: bool) -> Self {
        Task {
            name: String::new(),
            weight_big,
            weight_little,
            replicable,
        }
    }

    /// Weight of the task on the given core type.
    #[must_use]
    pub fn weight(&self, v: CoreType) -> u64 {
        match v {
            CoreType::Big => self.weight_big,
            CoreType::Little => self.weight_little,
        }
    }
}

/// A partially-replicable task chain with O(1) interval queries.
///
/// All interval arguments are 0-based and inclusive: `[start, end]` denotes
/// tasks `τ_{start+1} .. τ_{end+1}` in the paper's 1-based notation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskChain {
    tasks: Vec<Task>,
    /// `prefix_big[i]` = sum of big-core weights of tasks `0..i`.
    prefix_big: Vec<u64>,
    /// `prefix_little[i]` = sum of little-core weights of tasks `0..i`.
    prefix_little: Vec<u64>,
    /// `next_seq[i]` = smallest index `>= i` of a sequential task, or `n`.
    next_seq: Vec<usize>,
}

impl TaskChain {
    /// Builds a chain from its tasks.
    ///
    /// # Panics
    /// Panics if `tasks` is empty or any task has a zero weight (Eq. (1)
    /// assumes positive latencies; zero-weight tasks would make tie-breaking
    /// on replication counts ill-defined).
    #[must_use]
    pub fn new(tasks: Vec<Task>) -> Self {
        assert!(!tasks.is_empty(), "a task chain needs at least one task");
        let n = tasks.len();
        let mut prefix_big = Vec::with_capacity(n + 1);
        let mut prefix_little = Vec::with_capacity(n + 1);
        prefix_big.push(0);
        prefix_little.push(0);
        for t in &tasks {
            assert!(
                t.weight_big > 0 && t.weight_little > 0,
                "task weights must be positive"
            );
            prefix_big.push(prefix_big.last().unwrap() + t.weight_big);
            prefix_little.push(prefix_little.last().unwrap() + t.weight_little);
        }
        let mut next_seq = vec![n; n + 1];
        for i in (0..n).rev() {
            next_seq[i] = if tasks[i].replicable {
                next_seq[i + 1]
            } else {
                i
            };
        }
        TaskChain {
            tasks,
            prefix_big,
            prefix_little,
            next_seq,
        }
    }

    /// Number of tasks `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: chains are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The tasks, in chain order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The `i`-th task (0-based).
    #[must_use]
    pub fn task(&self, i: usize) -> &Task {
        &self.tasks[i]
    }

    /// Sum of weights of tasks `[start, end]` (inclusive) on core type `v`.
    #[must_use]
    pub fn interval_sum(&self, start: usize, end: usize, v: CoreType) -> u64 {
        debug_assert!(start <= end && end < self.len());
        match v {
            CoreType::Big => self.prefix_big[end + 1] - self.prefix_big[start],
            CoreType::Little => self.prefix_little[end + 1] - self.prefix_little[start],
        }
    }

    /// Sum of weights of the whole chain on core type `v`.
    #[must_use]
    pub fn total(&self, v: CoreType) -> u64 {
        self.interval_sum(0, self.len() - 1, v)
    }

    /// `IsRep` (Algorithm 3): whether the interval `[start, end]` contains
    /// only replicable tasks.
    #[must_use]
    pub fn is_replicable(&self, start: usize, end: usize) -> bool {
        debug_assert!(start <= end && end < self.len());
        self.next_seq[start] > end
    }

    /// `FinalRepTask` (Algorithm 3): the largest `e >= end` such that
    /// `[start, e]` is replicable. Requires `[start, end]` replicable.
    #[must_use]
    pub fn final_replicable_task(&self, start: usize, end: usize) -> usize {
        debug_assert!(self.is_replicable(start, end));
        self.next_seq[start].min(self.len()) - 1
    }

    /// Stage weight `w(s, r, v)` from Eq. (1): infinite with zero cores, the
    /// plain weight sum if the interval contains a sequential task (extra
    /// cores are useless), `sum / r` otherwise.
    #[must_use]
    pub fn stage_weight(&self, start: usize, end: usize, r: u64, v: CoreType) -> Ratio {
        if r == 0 {
            return Ratio::INFINITY;
        }
        let sum = self.interval_sum(start, end, v);
        if self.is_replicable(start, end) {
            Ratio::new(u128::from(sum), u128::from(r))
        } else {
            Ratio::from_int(sum)
        }
    }

    /// Largest weight of any single task on core type `v`.
    #[must_use]
    pub fn max_task_weight(&self, v: CoreType) -> u64 {
        self.tasks.iter().map(|t| t.weight(v)).max().unwrap()
    }

    /// Largest weight of any *sequential* task on `v`, or 0 when every task
    /// is replicable.
    #[must_use]
    pub fn max_sequential_weight(&self, v: CoreType) -> u64 {
        self.tasks
            .iter()
            .filter(|t| !t.replicable)
            .map(|t| t.weight(v))
            .max()
            .unwrap_or(0)
    }

    /// Number of replicable tasks.
    #[must_use]
    pub fn replicable_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.replicable).count()
    }

    /// Fraction of replicable tasks (the paper's *stateless ratio*, SR).
    #[must_use]
    pub fn stateless_ratio(&self) -> f64 {
        self.replicable_count() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TaskChain {
        // weights (big, little), R = replicable, S = sequential
        // idx:   0        1        2        3        4
        //        S(4,8)   R(2,6)   R(3,9)   S(5,10)  R(1,2)
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(2, 6, true),
            Task::new(3, 9, true),
            Task::new(5, 10, false),
            Task::new(1, 2, true),
        ])
    }

    #[test]
    fn interval_sums_match_naive() {
        let c = chain();
        for s in 0..c.len() {
            for e in s..c.len() {
                let naive_b: u64 = (s..=e).map(|i| c.task(i).weight_big).sum();
                let naive_l: u64 = (s..=e).map(|i| c.task(i).weight_little).sum();
                assert_eq!(c.interval_sum(s, e, CoreType::Big), naive_b);
                assert_eq!(c.interval_sum(s, e, CoreType::Little), naive_l);
            }
        }
    }

    #[test]
    fn replicability_queries() {
        let c = chain();
        assert!(!c.is_replicable(0, 0));
        assert!(c.is_replicable(1, 2));
        assert!(!c.is_replicable(1, 3));
        assert!(c.is_replicable(4, 4));
        assert_eq!(c.final_replicable_task(1, 1), 2);
        assert_eq!(c.final_replicable_task(4, 4), 4);
    }

    #[test]
    fn stage_weight_follows_eq1() {
        let c = chain();
        // replicable interval [1,2]: (2+3)/r on big
        assert_eq!(c.stage_weight(1, 2, 1, CoreType::Big), Ratio::from_int(5));
        assert_eq!(c.stage_weight(1, 2, 2, CoreType::Big), Ratio::new(5, 2));
        // sequential interval [0,2]: sum regardless of r
        assert_eq!(c.stage_weight(0, 2, 3, CoreType::Big), Ratio::from_int(9));
        // zero cores
        assert!(c.stage_weight(0, 0, 0, CoreType::Big).is_infinite());
        // little-core weights
        assert_eq!(c.stage_weight(1, 2, 3, CoreType::Little), Ratio::new(15, 3));
    }

    #[test]
    fn extrema() {
        let c = chain();
        assert_eq!(c.max_task_weight(CoreType::Big), 5);
        assert_eq!(c.max_task_weight(CoreType::Little), 10);
        assert_eq!(c.max_sequential_weight(CoreType::Big), 5);
        assert_eq!(c.replicable_count(), 3);
        assert!((c.stateless_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_replicable_has_no_sequential_max() {
        let c = TaskChain::new(vec![Task::new(1, 2, true), Task::new(3, 4, true)]);
        assert_eq!(c.max_sequential_weight(CoreType::Big), 0);
        assert!(c.is_replicable(0, 1));
        assert_eq!(c.final_replicable_task(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_chain_panics() {
        let _ = TaskChain::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let _ = TaskChain::new(vec![Task::new(0, 1, true)]);
    }
}
