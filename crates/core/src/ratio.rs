//! Exact rational arithmetic for stage weights and periods.
//!
//! Stage weights are `sum / r` where `sum` is an integer sum of task weights
//! and `r` a core count, so every achievable period is a rational with a
//! small denominator. Using exact rationals (instead of `f64`) makes every
//! scheduler deterministic and lets the test suite check HeRAD's optimality
//! bit-for-bit, including the tie-breaking on core usage.

use core::cmp::Ordering;
use core::fmt;

/// A non-negative rational number with exact comparison semantics.
///
/// The value `num / den` is kept gcd-normalized. A zero denominator encodes
/// positive infinity (used for the weight of a stage with zero cores, as in
/// Eq. (1) of the paper). All finite values use `u128` arithmetic internally;
/// cross-multiplication never overflows for the magnitudes this library
/// produces (weight sums far below 2^64, denominators bounded by core counts
/// times a few binary-search halvings).
#[derive(Clone, Copy)]
pub struct Ratio {
    num: u128,
    den: u128,
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ratio {}

impl Ratio {
    /// Exact zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// Positive infinity (weight of an unschedulable stage).
    pub const INFINITY: Ratio = Ratio { num: 1, den: 0 };

    /// Builds `num / den`, normalizing by the gcd. `den == 0` yields
    /// [`Ratio::INFINITY`] regardless of `num`.
    #[must_use]
    pub fn new(num: u128, den: u128) -> Self {
        if den == 0 {
            return Self::INFINITY;
        }
        if num == 0 {
            return Self::ZERO;
        }
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Builds `num / den` without gcd normalization. Comparison and equality
    /// cross-multiply (with an exact equal-denominator shortcut that
    /// compares numerators directly), so unnormalized values behave
    /// identically; only [`Ratio::numer`]/[`Ratio::denom`] and the
    /// `Display` output differ. Used on hot paths (HeRAD's inner loops)
    /// where the gcd is measurable.
    #[must_use]
    pub fn new_raw(num: u128, den: u128) -> Self {
        if den == 0 {
            Self::INFINITY
        } else {
            Ratio { num, den }
        }
    }

    /// Builds the integer value `n`.
    #[must_use]
    pub fn from_int(n: u64) -> Self {
        Ratio {
            num: u128::from(n),
            den: 1,
        }
    }

    /// Numerator of the normalized fraction (1 for infinity).
    #[must_use]
    pub fn numer(self) -> u128 {
        self.num
    }

    /// Denominator of the normalized fraction (0 for infinity).
    #[must_use]
    pub fn denom(self) -> u128 {
        self.den
    }

    /// Whether this value is positive infinity.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.den == 0
    }

    /// Whether this value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.den != 0
    }

    /// Whether this value is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0 && self.den != 0
    }

    /// Exact difference, saturating at zero (periods are non-negative).
    /// `INFINITY - x` is infinity; `x - INFINITY` saturates to zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Ratio) -> Ratio {
        if self.is_infinite() {
            return Self::INFINITY;
        }
        if rhs.is_infinite() {
            return Self::ZERO;
        }
        let left = self.num * rhs.den;
        let right = rhs.num * self.den;
        if left <= right {
            return Self::ZERO;
        }
        Ratio::new(left - right, self.den * rhs.den)
    }

    /// Exact midpoint `(self + rhs) / 2` for the binary search in
    /// `Schedule` (Algorithm 1). Requires both operands finite.
    #[must_use]
    pub fn midpoint(self, rhs: Ratio) -> Ratio {
        debug_assert!(self.is_finite() && rhs.is_finite());
        Ratio::new(
            self.num * rhs.den + rhs.num * self.den,
            2 * self.den * rhs.den,
        )
    }

    /// Exact division by a positive integer.
    #[must_use]
    pub fn div_int(self, rhs: u64) -> Ratio {
        if self.is_infinite() {
            return Self::INFINITY;
        }
        Ratio::new(self.num, self.den * u128::from(rhs))
    }

    /// `ceil(self / rhs)` for a finite, positive `rhs`: the number of cores
    /// needed so that `self / cores <= rhs` (`RequiredCores`, Algorithm 3).
    /// Returns `None` when `self` is infinite.
    #[must_use]
    pub fn div_ceil(self, rhs: Ratio) -> Option<u64> {
        debug_assert!(rhs.is_finite() && !rhs.is_zero());
        if self.is_infinite() {
            return None;
        }
        // ceil((n1/d1) / (n2/d2)) = ceil(n1*d2 / (d1*n2))
        let num = self.num * rhs.den;
        let den = self.den * rhs.num;
        Some(u64::try_from(num.div_ceil(den)).expect("core count overflows u64"))
    }

    /// Lossy conversion for reporting (throughputs, tables). Infinity maps
    /// to `f64::INFINITY`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

impl core::ops::Add for Ratio {
    type Output = Ratio;

    /// Exact sum. Infinity absorbs.
    fn add(self, rhs: Ratio) -> Ratio {
        if self.is_infinite() || rhs.is_infinite() {
            return Self::INFINITY;
        }
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_infinite(), other.is_infinite()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            // Equal denominators (common in the DP inner loops: integer
            // weights share den == 1, and candidates for the same core
            // count share a denominator) order by numerator alone — the
            // cross-multiplication scales both sides by the same positive
            // factor, so skipping it is exact, not approximate.
            (false, false) if self.den == other.den => self.num.cmp(&other.num),
            (false, false) => (self.num * other.den).cmp(&(other.num * self.den)),
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_on_construction() {
        let r = Ratio::new(6, 4);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_den_is_infinity() {
        assert!(Ratio::new(5, 0).is_infinite());
        assert_eq!(Ratio::new(5, 0), Ratio::INFINITY);
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(2, 3) > Ratio::new(3, 5));
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
    }

    #[test]
    fn infinity_dominates() {
        assert!(Ratio::INFINITY > Ratio::from_int(u64::MAX));
        assert_eq!(Ratio::INFINITY, Ratio::INFINITY);
        assert_eq!(Ratio::INFINITY + Ratio::ZERO, Ratio::INFINITY);
    }

    #[test]
    fn midpoint_is_exact() {
        let m = Ratio::new(1, 2).midpoint(Ratio::new(1, 3));
        assert_eq!(m, Ratio::new(5, 12));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Ratio::new(1, 2).saturating_sub(Ratio::new(3, 4)),
            Ratio::ZERO
        );
        assert_eq!(
            Ratio::new(3, 4).saturating_sub(Ratio::new(1, 2)),
            Ratio::new(1, 4)
        );
        assert_eq!(
            Ratio::from_int(1).saturating_sub(Ratio::INFINITY),
            Ratio::ZERO
        );
    }

    #[test]
    fn div_ceil_counts_cores() {
        // weight 10 at period 3 -> 4 cores
        assert_eq!(Ratio::from_int(10).div_ceil(Ratio::from_int(3)), Some(4));
        // weight 9 at period 3 -> exactly 3
        assert_eq!(Ratio::from_int(9).div_ceil(Ratio::from_int(3)), Some(3));
        // fractional period
        assert_eq!(Ratio::from_int(10).div_ceil(Ratio::new(7, 2)), Some(3));
        assert_eq!(Ratio::INFINITY.div_ceil(Ratio::from_int(1)), None);
    }

    #[test]
    fn equal_denominator_fast_path_is_exact() {
        // Unnormalized values with a shared denominator: the numerator
        // shortcut must agree with full cross-multiplication.
        assert!(Ratio::new_raw(6, 4) < Ratio::new_raw(10, 4));
        assert!(Ratio::new_raw(10, 4) > Ratio::new_raw(6, 4));
        assert_eq!(Ratio::new_raw(6, 4), Ratio::new_raw(6, 4));
        assert_eq!(
            Ratio::new_raw(6, 4).cmp(&Ratio::new_raw(6, 4)),
            Ordering::Equal
        );
        // Same value, different denominators still goes the exact
        // cross-multiply route.
        assert_eq!(Ratio::new_raw(6, 4), Ratio::new_raw(3, 2));
        // den == 1 integers (the dominant DP case).
        assert!(Ratio::new_raw(7, 1) < Ratio::new_raw(9, 1));
        // Zero-denominator operands never take the shortcut.
        assert!(Ratio::new_raw(5, 0) > Ratio::new_raw(u128::MAX, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Ratio::new(3, 2)), "3/2");
        assert_eq!(format!("{}", Ratio::from_int(7)), "7");
        assert_eq!(format!("{}", Ratio::INFINITY), "inf");
    }
}
