//! Energy-aware scheduling — the sequel paper's objective
//! ("Energy-Aware Scheduling Strategies for Partially-Replicable Task
//! Chains on Heterogeneous Processors", arxiv 2502.10000).
//!
//! The base paper minimizes the period and uses little-core counts as a
//! power proxy; here energy is first-class. Every routine in this module
//! answers the **min-energy-under-a-throughput-constraint** question:
//! given a target operating period `T`, find the feasible interval
//! decomposition + core assignment minimizing the steady-state power
//! drawn when the pipeline is operated at `T` (frames admitted every `T`
//! units). Power is scored with the integer-milliwatt model
//! [`MilliPower`], so all comparisons are exact rationals — no float
//! ties.
//!
//! ## Why the DP reuses HeRAD's cell lattice
//!
//! At a fixed operating period `T`, the energy of a stage over tasks
//! `[i, j]` on `r` cores of type `v` is
//!
//! ```text
//! r·m_v·idle + m_v·(1 − idle)·w(i,j,r,v)/T
//! ```
//!
//! The busy term depends only on the stage's total work (for a replicable
//! stage `r·w = Σ w_τ` exactly), and the idle term grows with `r` — so
//! the **minimal** feasible core count (`RequiredCores`, the same
//! primitive HeRAD's cells use) is always energy-optimal for a fixed
//! interval, and total energy is a *sum of independent per-stage terms*.
//! That makes the objective separable over exactly the `(tasks-covered,
//! big-used, little-used)` lattice HeRAD's DP already sweeps: only the
//! cell *value* changes from a period to an energy. [`EnergyDp`] is that
//! DP and is provably optimal; the brute-force oracle in
//! `amp-conformance` pins it.
//!
//! ## The Pareto front
//!
//! [`pareto_front`] emits the nondominated period×energy set. The
//! operating periods worth quoting are the *achievable* ones — between
//! two consecutive achievable stage weights the optimal structure cannot
//! change — so the front driver enumerates [`candidate_periods`] (every
//! `w(i,j,r,v)` in range), solves the energy DP at each, and keeps the
//! strict improvements. Minimal energy is monotone non-increasing in the
//! period bound (any solution feasible at `T` is feasible and cheaper at
//! `T' > T`), which yields a front sorted by period with strictly
//! decreasing energy — and powers [`min_period_under_energy_cap`], a
//! binary search over the candidate periods for the fastest operating
//! point within an energy budget.

use crate::chain::TaskChain;
use crate::power::{ratio_add, MilliPower, PowerModel};
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::binary_search::PeriodBounds;
use crate::sched::scratch::SchedScratch;
use crate::sched::support::{compute_stage, required_cores, stage_fits};
use crate::sched::{Herad, Scheduler};
use crate::solution::{Solution, Stage};

/// An energy-aware strategy: maps a chain, a pool, a power model and a
/// target operating period to the schedule it deems cheapest that still
/// meets the period. Returns the exact energy (milliwatts, as a
/// [`Ratio`]) on success, `None` when the strategy finds no feasible
/// schedule at `target`.
///
/// Mirrors [`crate::sched::Scheduler`] but carries the two extra inputs
/// (model + target) that make energy a different objective, not a
/// different tie-break.
pub trait EnergyScheduler: Send + Sync {
    /// Display name (`EnergyDP`, `EnergyFERTAC`, `Energy2CATAC`).
    fn name(&self) -> &'static str;

    /// Schedules `chain` on `resources` minimizing steady-state power at
    /// operating period `target`, writing the schedule into `out`.
    /// Returns the exact energy in milliwatts, or `None` (leaving `out`
    /// empty) when the strategy cannot meet `target`.
    fn schedule_energy_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        power: &MilliPower,
        target: Ratio,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> Option<Ratio>;

    /// Allocating convenience wrapper around
    /// [`Self::schedule_energy_into`].
    fn schedule_energy(
        &self,
        chain: &TaskChain,
        resources: Resources,
        power: &MilliPower,
        target: Ratio,
    ) -> Option<(Solution, Ratio)> {
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        let energy =
            self.schedule_energy_into(chain, resources, power, target, &mut scratch, &mut out)?;
        Some((out, energy))
    }
}

/// Exact energy (milliwatts) of the stage `[start, end]` on `r` cores of
/// type `v` at operating period `target`.
fn stage_energy(
    chain: &TaskChain,
    power: &MilliPower,
    start: usize,
    end: usize,
    r: u64,
    v: CoreType,
    target: Ratio,
) -> Ratio {
    power.stage_power_mw(chain, &Stage::new(start, end, r, v), target)
}

/// Minimal feasible core count for the stage `[start, end]` on type `v`
/// at `target`, or `None` when no count works (a sequential interval
/// heavier than the target, or more cores needed than `avail`). Minimal
/// is energy-optimal: the idle term is the only `r`-dependent part and it
/// only grows.
fn minimal_cores(
    chain: &TaskChain,
    start: usize,
    end: usize,
    v: CoreType,
    target: Ratio,
    avail: u64,
) -> Option<u64> {
    if avail == 0 {
        return None;
    }
    let w1 = chain.stage_weight(start, end, 1, v);
    let r = if w1 <= target {
        1
    } else if chain.is_replicable(start, end) {
        required_cores(chain, start, end, v, target)
    } else {
        return None; // sequential interval above target: replication can't help
    };
    (r <= avail && chain.stage_weight(start, end, r, v) <= target).then_some(r)
}

/// One DP cell: minimal energy to cover a task prefix within a core
/// budget, plus the back-pointer of the last stage achieving it.
#[derive(Clone, Copy)]
struct Cell {
    energy: Ratio,
    prev_start: u32,
    cores: u64,
    core_type: CoreType,
}

const UNSOLVED: Cell = Cell {
    energy: Ratio::INFINITY,
    prev_start: 0,
    cores: 0,
    core_type: CoreType::Big,
};

/// The optimal min-energy-under-throughput DP over HeRAD's
/// `(tasks-covered, big-budget, little-budget)` cell lattice (see the
/// module docs for why the lattice transfers). `E[j][b][l]` is the
/// minimal energy covering the first `j` tasks with at most `b` big and
/// `l` little cores; transitions enumerate the last stage's start and
/// core type with the minimal feasible core count. Ties break toward
/// little cores (the sequel's exchange preference), then toward the
/// longer last stage — deterministically.
#[derive(Debug, Default, Clone, Copy)]
pub struct EnergyDp;

impl EnergyDp {
    /// Creates the solver.
    #[must_use]
    pub fn new() -> Self {
        EnergyDp
    }
}

impl EnergyScheduler for EnergyDp {
    fn name(&self) -> &'static str {
        "EnergyDP"
    }

    fn schedule_energy_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        power: &MilliPower,
        target: Ratio,
        _scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> Option<Ratio> {
        out.stages_mut().clear();
        if !target.is_finite() || target.is_zero() || chain.is_empty() {
            return None;
        }
        let n = chain.len();
        let nb = usize::try_from(resources.of(CoreType::Big)).ok()? + 1;
        let nl = usize::try_from(resources.of(CoreType::Little)).ok()? + 1;
        let idx = |j: usize, b: usize, l: usize| (j * nb + b) * nl + l;
        let mut cells = vec![UNSOLVED; (n + 1) * nb * nl];
        for b in 0..nb {
            for l in 0..nl {
                cells[idx(0, b, l)].energy = Ratio::ZERO;
            }
        }
        for j in 1..=n {
            for b in 0..nb {
                for l in 0..nl {
                    let mut best = UNSOLVED;
                    // Little first, then longer stages first: equal-energy
                    // candidates resolve toward little cores, then toward
                    // fewer stages.
                    for v in [CoreType::Little, CoreType::Big] {
                        let budget = if v == CoreType::Big { b } else { l } as u64;
                        for i in 0..j {
                            let Some(r) = minimal_cores(chain, i, j - 1, v, target, budget) else {
                                continue;
                            };
                            let (pb, pl) = match v {
                                CoreType::Big => (b - r as usize, l),
                                CoreType::Little => (b, l - r as usize),
                            };
                            let prev = cells[idx(i, pb, pl)].energy;
                            if prev.is_infinite() {
                                continue;
                            }
                            let e =
                                ratio_add(prev, stage_energy(chain, power, i, j - 1, r, v, target));
                            if e < best.energy {
                                best = Cell {
                                    energy: e,
                                    prev_start: i as u32,
                                    cores: r,
                                    core_type: v,
                                };
                            }
                        }
                    }
                    cells[idx(j, b, l)] = best;
                }
            }
        }
        let total = cells[idx(n, nb - 1, nl - 1)].energy;
        if total.is_infinite() {
            return None;
        }
        // Extraction: walk the back-pointers from the full budget.
        let (mut j, mut b, mut l) = (n, nb - 1, nl - 1);
        while j > 0 {
            let cell = cells[idx(j, b, l)];
            out.prepend(Stage::new(
                cell.prev_start as usize,
                j - 1,
                cell.cores,
                cell.core_type,
            ));
            match cell.core_type {
                CoreType::Big => b -= cell.cores as usize,
                CoreType::Little => l -= cell.cores as usize,
            }
            j = cell.prev_start as usize;
        }
        Some(total)
    }
}

/// Energy-greedy FERTAC: one left-to-right pass, choosing at each stage
/// start the core type whose `ComputeStage` stage has the lower energy
/// *density* (energy per task covered; little wins ties), followed by a
/// big→little exchange pass that re-types any big stage whose interval
/// also fits on the remaining little cores for less energy. Fast and
/// feasibility-safe, not optimal.
#[derive(Debug, Default, Clone, Copy)]
pub struct EnergyFertac;

impl EnergyScheduler for EnergyFertac {
    fn name(&self) -> &'static str {
        "EnergyFERTAC"
    }

    fn schedule_energy_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        power: &MilliPower,
        target: Ratio,
        _scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> Option<Ratio> {
        out.stages_mut().clear();
        if !target.is_finite() || target.is_zero() || chain.is_empty() {
            return None;
        }
        let n = chain.len();
        let mut left = resources;
        let mut start = 0;
        while start < n {
            let mut picked: Option<(usize, u64, CoreType, Ratio)> = None;
            for v in [CoreType::Little, CoreType::Big] {
                let c = left.of(v);
                if c == 0 {
                    continue;
                }
                let (end, used) = compute_stage(chain, start, c, v, target);
                if !stage_fits(chain, start, end, used, c, v, target) {
                    continue;
                }
                let e = stage_energy(chain, power, start, end, used, v, target);
                // Energy per task covered; strictly-less keeps little on ties.
                let density = Ratio::new(e.numer(), e.denom() * ((end - start + 1) as u128));
                if picked.as_ref().is_none_or(|&(_, _, _, pd)| density < pd) {
                    picked = Some((end, used, v, density));
                }
            }
            let (end, used, v, _) = picked?;
            out.stages_mut().push(Stage::new(start, end, used, v));
            left = left.minus(v, used);
            start = end + 1;
        }
        // Exchange pass: re-type big stages onto spare little cores when
        // that strictly lowers energy (the sequel's little-preference).
        for k in 0..out.stages().len() {
            let s = out.stages()[k];
            if s.core_type != CoreType::Big {
                continue;
            }
            let Some(r) = minimal_cores(
                chain,
                s.start,
                s.end,
                CoreType::Little,
                target,
                left.of(CoreType::Little),
            ) else {
                continue;
            };
            let old = stage_energy(chain, power, s.start, s.end, s.cores, CoreType::Big, target);
            let new = stage_energy(chain, power, s.start, s.end, r, CoreType::Little, target);
            if new < old {
                left = left.minus(CoreType::Little, r);
                left = Resources::new(left.of(CoreType::Big) + s.cores, left.of(CoreType::Little));
                out.stages_mut()[k] = Stage::new(s.start, s.end, r, CoreType::Little);
            }
        }
        Some(power.solution_power_mw(chain, out, target))
    }
}

/// Energy-greedy 2CATAC: the two-branch recursion of 2CATAC (both core
/// types tried at every stage start, little explored first) with the
/// winner chosen by total energy instead of core count. `node_budget`
/// bounds the explored recursion nodes exactly like
/// [`crate::sched::Twocatac::with_node_budget`]; an exhausted budget
/// abandons the subtree, so the result degrades toward the first
/// (little-leaning) branch rather than failing.
#[derive(Debug, Clone, Copy)]
pub struct EnergyTwocatac {
    node_budget: Option<u64>,
}

impl Default for EnergyTwocatac {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyTwocatac {
    /// Unbounded exploration.
    #[must_use]
    pub fn new() -> Self {
        EnergyTwocatac { node_budget: None }
    }

    /// Bounds the number of recursion nodes explored per solve.
    #[must_use]
    pub fn with_node_budget(budget: u64) -> Self {
        EnergyTwocatac {
            node_budget: Some(budget),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn explore(
        &self,
        chain: &TaskChain,
        power: &MilliPower,
        target: Ratio,
        left: Resources,
        start: usize,
        acc: Ratio,
        nodes_left: &mut u64,
        current: &mut Vec<Stage>,
        best: &mut Option<(Ratio, Vec<Stage>)>,
    ) {
        if start == chain.len() {
            let better = best.as_ref().is_none_or(|(be, _)| acc < *be);
            if better {
                *best = Some((acc, current.clone()));
            }
            return;
        }
        if *nodes_left == 0 {
            return;
        }
        *nodes_left -= 1;
        // Prune: energy only grows along a branch.
        if best.as_ref().is_some_and(|(be, _)| acc >= *be) {
            return;
        }
        for v in [CoreType::Little, CoreType::Big] {
            let c = left.of(v);
            if c == 0 {
                continue;
            }
            let (end, used) = compute_stage(chain, start, c, v, target);
            if !stage_fits(chain, start, end, used, c, v, target) {
                continue;
            }
            let e = ratio_add(acc, stage_energy(chain, power, start, end, used, v, target));
            current.push(Stage::new(start, end, used, v));
            self.explore(
                chain,
                power,
                target,
                left.minus(v, used),
                end + 1,
                e,
                nodes_left,
                current,
                best,
            );
            current.pop();
        }
    }
}

impl EnergyScheduler for EnergyTwocatac {
    fn name(&self) -> &'static str {
        "Energy2CATAC"
    }

    fn schedule_energy_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        power: &MilliPower,
        target: Ratio,
        _scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> Option<Ratio> {
        out.stages_mut().clear();
        if !target.is_finite() || target.is_zero() || chain.is_empty() {
            return None;
        }
        let mut nodes_left = self.node_budget.unwrap_or(u64::MAX);
        let mut current = Vec::new();
        let mut best: Option<(Ratio, Vec<Stage>)> = None;
        self.explore(
            chain,
            power,
            target,
            resources,
            0,
            Ratio::ZERO,
            &mut nodes_left,
            &mut current,
            &mut best,
        );
        let (energy, stages) = best?;
        *out.stages_mut() = stages;
        Some(energy)
    }
}

/// The three energy-aware strategies, optimal first.
#[must_use]
pub fn energy_strategies() -> Vec<Box<dyn EnergyScheduler>> {
    vec![
        Box::new(EnergyDp::new()),
        Box::new(EnergyTwocatac::new()),
        Box::new(EnergyFertac),
    ]
}

/// Looks up an energy strategy by display name (`"EnergyDP"`,
/// `"Energy2CATAC"`, `"EnergyFERTAC"`); `None` for anything else so
/// services surface a typed error.
#[must_use]
pub fn energy_strategy_by_name(name: &str) -> Option<Box<dyn EnergyScheduler>> {
    match name {
        "EnergyDP" => Some(Box::new(EnergyDp::new())),
        "Energy2CATAC" => Some(Box::new(EnergyTwocatac::new())),
        "EnergyFERTAC" => Some(Box::new(EnergyFertac)),
        _ => None,
    }
}

/// One nondominated operating point: run `solution` with one frame
/// admitted every `period` units, drawing exactly `energy_mw` milliwatts
/// (the minimum achievable at that period).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Operating period (the throughput constraint this point satisfies).
    pub period: Ratio,
    /// Exact minimal steady-state power at `period`, in milliwatts.
    pub energy_mw: Ratio,
    /// A schedule achieving it (its own period is `<= period`).
    pub solution: Solution,
}

/// Every period at which the optimal structure can change: the achievable
/// stage weights `w(i, j, r, v)` within `[lo, hi]`, sorted ascending and
/// deduplicated. Any solution's period is the max of its stage weights,
/// so between consecutive values the constrained optimum is constant.
#[must_use]
pub fn candidate_periods(chain: &TaskChain, pool: Resources, lo: Ratio, hi: Ratio) -> Vec<Ratio> {
    let n = chain.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in i..n {
            for v in CoreType::BOTH {
                let avail = pool.of(v);
                if avail == 0 {
                    continue;
                }
                let max_r = if chain.is_replicable(i, j) { avail } else { 1 };
                for r in 1..=max_r {
                    let w = chain.stage_weight(i, j, r, v);
                    if w >= lo && w <= hi {
                        out.push(w);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The nondominated period×energy set for `chain` on `pool` under
/// `model`, sorted by ascending period with strictly decreasing energy.
///
/// The first point operates at HeRAD's optimal period (min-period
/// endpoint); the last is the global min-energy operating point within
/// the greedy-reachable period range ([`PeriodBounds::compute`]'s upper
/// bound — beyond it, slowing down further only adds idle draw for the
/// same structure). Candidates with no strict energy improvement over a
/// faster point are dominated and dropped.
#[must_use]
pub fn pareto_front(chain: &TaskChain, pool: Resources, model: &PowerModel) -> Vec<ParetoPoint> {
    let power = model.to_milli();
    let Some(bounds) = PeriodBounds::compute(chain, pool) else {
        return Vec::new();
    };
    let Some(opt) = Herad::new().schedule(chain, pool) else {
        return Vec::new();
    };
    let t_opt = opt.period(chain);
    let dp = EnergyDp::new();
    let mut scratch = SchedScratch::new();
    let mut front = Vec::new();
    for t in candidate_periods(chain, pool, t_opt, bounds.upper.max(t_opt)) {
        let mut sol = Solution::empty();
        let Some(e) = dp.schedule_energy_into(chain, pool, &power, t, &mut scratch, &mut sol)
        else {
            continue;
        };
        let dominated = front.last().is_some_and(|p: &ParetoPoint| p.energy_mw <= e);
        if !dominated {
            front.push(ParetoPoint {
                period: t,
                energy_mw: e,
                solution: sol,
            });
        }
    }
    front
}

/// The fastest operating point whose minimal energy fits `cap_mw`
/// milliwatts: a binary search over [`candidate_periods`] — valid
/// because minimal energy is monotone non-increasing in the period —
/// returning `(period, energy, solution)` or `None` when even the
/// slowest candidate exceeds the cap.
#[must_use]
pub fn min_period_under_energy_cap(
    chain: &TaskChain,
    pool: Resources,
    model: &PowerModel,
    cap_mw: Ratio,
) -> Option<(Ratio, Ratio, Solution)> {
    let power = model.to_milli();
    let bounds = PeriodBounds::compute(chain, pool)?;
    let t_opt = Herad::new().schedule(chain, pool)?.period(chain);
    let cands = candidate_periods(chain, pool, t_opt, bounds.upper.max(t_opt));
    let dp = EnergyDp::new();
    let mut scratch = SchedScratch::new();
    let mut solve = |t: Ratio| {
        let mut sol = Solution::empty();
        dp.schedule_energy_into(chain, pool, &power, t, &mut scratch, &mut sol)
            .map(|e| (e, sol))
    };
    // Invariant: all candidates below `lo` are over the cap; the answer,
    // if any, is at or above `lo` and at or below `hi`.
    let (mut lo, mut hi) = (0usize, cands.len().checked_sub(1)?);
    let (e_hi, _) = solve(cands[hi])?;
    if e_hi > cap_mw {
        return None;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match solve(cands[mid]) {
            Some((e, _)) if e <= cap_mw => hi = mid,
            _ => lo = mid + 1,
        }
    }
    let t = cands[lo];
    let (e, sol) = solve(t)?;
    Some((t, e, sol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::solution::period_of;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ])
    }

    fn check_feasible(c: &TaskChain, pool: Resources, sol: &Solution, target: Ratio) {
        assert!(sol.validate(c).is_ok(), "invalid: {}", sol.decomposition());
        assert!(sol.is_valid(c, pool, target), "violates budget/target");
        assert!(period_of(c, sol.stages()) <= target);
    }

    #[test]
    fn dp_meets_target_and_is_cheapest_of_the_three() {
        let c = chain();
        let pool = Resources::new(2, 2);
        let power = MilliPower::typical();
        let t_opt = Herad::new().schedule(&c, pool).unwrap().period(&c);
        for t in [t_opt, Ratio::new(t_opt.numer() * 2, t_opt.denom())] {
            let (dp_sol, dp_e) = EnergyDp::new()
                .schedule_energy(&c, pool, &power, t)
                .unwrap();
            check_feasible(&c, pool, &dp_sol, t);
            assert_eq!(power.solution_power_mw(&c, &dp_sol, t), dp_e);
            for s in energy_strategies() {
                if let Some((sol, e)) = s.schedule_energy(&c, pool, &power, t) {
                    check_feasible(&c, pool, &sol, t);
                    assert!(dp_e <= e, "{} beat the DP", s.name());
                }
            }
        }
    }

    #[test]
    fn infeasible_target_returns_none() {
        let c = chain();
        let pool = Resources::new(1, 0);
        let power = MilliPower::typical();
        // Even the single sequential task 0 weighs 10 on big — target 1
        // is unreachable.
        for s in energy_strategies() {
            assert!(
                s.schedule_energy(&c, pool, &power, Ratio::from_int(1))
                    .is_none(),
                "{} invented a schedule",
                s.name()
            );
        }
    }

    #[test]
    fn degenerate_targets_return_none() {
        let c = chain();
        let pool = Resources::new(2, 2);
        let power = MilliPower::typical();
        for s in energy_strategies() {
            assert!(s.schedule_energy(&c, pool, &power, Ratio::ZERO).is_none());
            assert!(s
                .schedule_energy(&c, pool, &power, Ratio::INFINITY)
                .is_none());
        }
    }

    #[test]
    fn relaxing_the_target_never_costs_energy() {
        let c = chain();
        let pool = Resources::new(2, 2);
        let power = MilliPower::typical();
        let t_opt = Herad::new().schedule(&c, pool).unwrap().period(&c);
        let mut last = Ratio::INFINITY;
        for k in 1..=6u128 {
            let t = Ratio::new(t_opt.numer() * k, t_opt.denom());
            let (_, e) = EnergyDp::new()
                .schedule_energy(&c, pool, &power, t)
                .unwrap();
            assert!(e <= last, "energy rose when the constraint relaxed");
            last = e;
        }
    }

    #[test]
    fn front_is_sorted_strictly_trading_off() {
        let c = chain();
        let pool = Resources::new(2, 2);
        let model = PowerModel::typical();
        let front = pareto_front(&c, pool, &model);
        assert!(!front.is_empty());
        let t_opt = Herad::new().schedule(&c, pool).unwrap().period(&c);
        assert_eq!(front[0].period, t_opt, "min-period endpoint");
        for w in front.windows(2) {
            assert!(w[0].period < w[1].period, "periods must ascend");
            assert!(w[0].energy_mw > w[1].energy_mw, "energy must strictly drop");
        }
        let power = model.to_milli();
        for p in &front {
            check_feasible(&c, pool, &p.solution, p.period);
            assert_eq!(
                power.solution_power_mw(&c, &p.solution, p.period),
                p.energy_mw
            );
        }
    }

    #[test]
    fn energy_cap_search_matches_linear_scan() {
        let c = chain();
        let pool = Resources::new(2, 2);
        let model = PowerModel::typical();
        let front = pareto_front(&c, pool, &model);
        // Cap exactly at each front energy: the search must return an
        // operating point no slower than that front point.
        for p in &front {
            let (t, e, sol) = min_period_under_energy_cap(&c, pool, &model, p.energy_mw)
                .expect("cap taken from the front is reachable");
            assert!(e <= p.energy_mw);
            assert!(t <= p.period);
            check_feasible(&c, pool, &sol, t);
        }
        // A cap below the cheapest point is unreachable.
        let min_e = front.last().unwrap().energy_mw;
        let below = Ratio::new(min_e.numer(), min_e.denom() * 2);
        assert!(min_period_under_energy_cap(&c, pool, &model, below).is_none());
    }

    #[test]
    fn by_name_round_trips() {
        for s in energy_strategies() {
            assert_eq!(
                energy_strategy_by_name(s.name())
                    .expect("resolvable")
                    .name(),
                s.name()
            );
        }
        assert!(energy_strategy_by_name("HeRAD").is_none());
        assert!(energy_strategy_by_name("energydp").is_none());
    }

    #[test]
    fn little_preference_on_equal_draw() {
        // One replicable task, one core of each type, equal weights and a
        // model where both types draw the same: the tie must go little.
        let c = TaskChain::new(vec![Task::new(10, 10, true)]);
        let pool = Resources::new(1, 1);
        let power = MilliPower::new(2000, 2000, 200);
        for s in energy_strategies() {
            let (sol, _) = s
                .schedule_energy(&c, pool, &power, Ratio::from_int(10))
                .unwrap();
            assert_eq!(
                sol.stages()[0].core_type,
                CoreType::Little,
                "{} must prefer little on ties",
                s.name()
            );
        }
    }
}
