//! The scheduling strategies of the paper: the greedy heuristics FERTAC and
//! 2CATAC (Section IV), the optimal dynamic program HeRAD (Section V), the
//! homogeneous baseline OTAC, and an exhaustive oracle for tests.

pub mod batch;
pub mod binary_search;
pub mod brute;
pub mod diff;
pub mod energy;
pub mod fertac;
pub mod herad;
pub mod otac;
pub mod scratch;
pub mod support;
pub mod twocatac;

use crate::chain::TaskChain;
use crate::resources::Resources;
use crate::solution::Solution;

pub use batch::{schedule_chains, schedule_many, schedule_many_with};
pub use binary_search::{schedule_binary_search, schedule_binary_search_into, PeriodBounds};
pub use brute::{all_optimal_solutions, optimal_period, optimal_usage_front, BruteForce};
pub use diff::{schedule_diff, DeltaKind, ScheduleDiff, StageDelta};
pub use energy::{
    candidate_periods, energy_strategies, energy_strategy_by_name, min_period_under_energy_cap,
    pareto_front, EnergyDp, EnergyFertac, EnergyScheduler, EnergyTwocatac, ParetoPoint,
};
pub use fertac::Fertac;
pub use herad::{ChainTable, ChainTableError, Herad, Pruning};
pub use otac::Otac;
pub use scratch::SchedScratch;
pub use twocatac::Twocatac;

/// A scheduling strategy: maps a task chain and a resource pool to a
/// pipelined/replicated solution (or `None` when no valid mapping exists,
/// e.g. without cores).
///
/// [`Scheduler::schedule_into`] is the hot path: it reuses the caller's
/// [`SchedScratch`] and output [`Solution`], so repeated solves allocate
/// nothing once those have warmed up on the largest shape seen.
/// [`Scheduler::schedule`] is the allocating convenience wrapper. Both
/// return bit-identical solutions — the conformance suite pins that.
///
/// `Send + Sync` is a supertrait so strategies (all stateless values) can
/// be shared across the [`schedule_many`] worker pool as trait objects.
pub trait Scheduler: Send + Sync {
    /// Display name, matching the paper's tables (`HeRAD`, `2CATAC`, ...).
    fn name(&self) -> &'static str;

    /// Computes a schedule for `chain` on `resources` into `out`,
    /// reusing `scratch`'s buffers. Returns `false` — leaving `out`
    /// empty — when no valid mapping exists.
    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool;

    /// Computes a schedule for `chain` on `resources`, allocating fresh
    /// scratch and output (the legacy signature).
    fn schedule(&self, chain: &TaskChain, resources: Resources) -> Option<Solution> {
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        self.schedule_into(chain, resources, &mut scratch, &mut out)
            .then_some(out)
    }
}

/// The paper's five evaluated strategies, in Table I order, as trait
/// objects for sweeps.
#[must_use]
pub fn paper_strategies() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::new()),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ]
}

/// Looks up a strategy by its Table I display name (the exact string the
/// strategy's [`Scheduler::name`] returns): `"HeRAD"`, `"2CATAC"`,
/// `"FERTAC"`, `"OTAC (B)"` or `"OTAC (L)"`. Returns `None` for anything
/// else so callers (CLIs, services) can surface a typed "unknown strategy"
/// error instead of panicking.
#[must_use]
pub fn strategy_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "HeRAD" => Some(Box::new(Herad::new())),
        "2CATAC" => Some(Box::new(Twocatac::new())),
        "FERTAC" => Some(Box::new(Fertac)),
        "OTAC (B)" => Some(Box::new(Otac::big())),
        "OTAC (L)" => Some(Box::new(Otac::little())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    #[test]
    fn paper_strategies_have_table_names() {
        let names: Vec<&str> = paper_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["HeRAD", "2CATAC", "FERTAC", "OTAC (B)", "OTAC (L)"]);
    }

    #[test]
    fn strategy_by_name_round_trips_paper_strategies() {
        for s in paper_strategies() {
            let looked_up = strategy_by_name(s.name())
                .unwrap_or_else(|| panic!("{} must be resolvable by name", s.name()));
            assert_eq!(looked_up.name(), s.name());
        }
    }

    #[test]
    fn strategy_by_name_resolves_equivalent_schedulers() {
        // The looked-up instance must behave like the canonical one, not
        // just share its label.
        let chain = TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ]);
        let res = Resources::new(2, 2);
        for s in paper_strategies() {
            let by_name = strategy_by_name(s.name()).unwrap();
            let a = s.schedule(&chain, res);
            let b = by_name.schedule(&chain, res);
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.period(&chain), b.period(&chain)),
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
        }
    }

    #[test]
    fn strategy_by_name_rejects_unknown_and_near_misses() {
        for bad in ["herad", "OTAC", "OTAC(B)", "2catac", "", "BruteForce"] {
            assert!(strategy_by_name(bad).is_none(), "{bad:?} must not resolve");
        }
    }
}
