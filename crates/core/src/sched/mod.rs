//! The scheduling strategies of the paper: the greedy heuristics FERTAC and
//! 2CATAC (Section IV), the optimal dynamic program HeRAD (Section V), the
//! homogeneous baseline OTAC, and an exhaustive oracle for tests.

pub mod binary_search;
pub mod brute;
pub mod fertac;
pub mod herad;
pub mod otac;
pub mod support;
pub mod twocatac;

use crate::chain::TaskChain;
use crate::resources::Resources;
use crate::solution::Solution;

pub use binary_search::{schedule_binary_search, PeriodBounds};
pub use brute::BruteForce;
pub use fertac::Fertac;
pub use herad::{Herad, Pruning};
pub use otac::Otac;
pub use twocatac::Twocatac;

/// A scheduling strategy: maps a task chain and a resource pool to a
/// pipelined/replicated solution (or `None` when no valid mapping exists,
/// e.g. without cores).
pub trait Scheduler {
    /// Display name, matching the paper's tables (`HeRAD`, `2CATAC`, ...).
    fn name(&self) -> &'static str;

    /// Computes a schedule for `chain` on `resources`.
    fn schedule(&self, chain: &TaskChain, resources: Resources) -> Option<Solution>;
}

/// The paper's five evaluated strategies, in Table I order, as trait
/// objects for sweeps.
#[must_use]
pub fn paper_strategies() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::new()),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_strategies_have_table_names() {
        let names: Vec<&str> = paper_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["HeRAD", "2CATAC", "FERTAC", "OTAC (B)", "OTAC (L)"]);
    }
}
