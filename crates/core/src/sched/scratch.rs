//! Reusable scheduling scratch: the arena that makes repeated solves
//! allocation-free.
//!
//! Every strategy's hot path ([`Scheduler::schedule_into`]) threads a
//! [`SchedScratch`] through its internals instead of allocating:
//!
//! * HeRAD parks its `n·(B+1)·(L+1)` DP solution table here as a
//!   *sweep memo* ([`HeradSweep`]): the table stays keyed to the chain and
//!   pruning that produced it, so a later solve of the same chain on a
//!   covered pool is pure extraction, a larger pool grows the table by
//!   only the new rows/columns (cell values are pool-independent — see
//!   `herad`'s module docs for the sub-table-growth invariant), and only
//!   a different chain pays for a rebuild. The backing vector only grows,
//!   never refilling cells that the recurrence overwrites anyway (see
//!   `herad::Table` for the staleness argument);
//! * the `Schedule` binary search rents its candidate stage buffer from
//!   the pool instead of building a fresh `Solution` per probe;
//! * 2CATAC's two-choice recursion rents one stage buffer per candidate
//!   per node and returns them on unwind, so the pool high-water mark is
//!   `O(n)` and steady-state recursion allocates nothing.
//!
//! A scratch is reusable memory plus one *replay memo*: HeRAD remembers
//! the last instance it solved (weights, replicability, pool, pruning)
//! and replays the stored solution verbatim when the very next solve is
//! the identical instance — the steady state of service resubmissions
//! and portfolio re-solves. The memo never changes observable behaviour:
//! a hit replays exactly what recomputation would produce (the DP is
//! deterministic), a near-miss (any weight, flag, pool or pruning
//! difference) recomputes. Scratches may be shared freely across
//! strategies and across instances of *different* shapes (smaller or
//! larger `n`, `B`, `L`), and always yield bit-identical solutions to
//! the allocating paths — the conformance suite pins exactly that.
//!
//! [`Scheduler::schedule_into`]: crate::sched::Scheduler::schedule_into

use crate::chain::TaskChain;
use crate::resources::Resources;
use crate::sched::herad::{Pruning, Table};
use crate::solution::Stage;

/// HeRAD's last-solve replay memo. Task names are deliberately excluded
/// from the key: scheduling depends only on weights and replicability,
/// and storing `(u64, u64, bool)` projections keeps memo updates
/// allocation-free on the steady state (no `String` clones).
#[derive(Debug)]
pub(crate) struct HeradMemo {
    pub(crate) pruning: Pruning,
    pub(crate) resources: Resources,
    pub(crate) tasks: Vec<(u64, u64, bool)>,
    pub(crate) stages: Vec<Stage>,
    pub(crate) feasible: bool,
}

impl HeradMemo {
    pub(crate) fn empty() -> Self {
        HeradMemo {
            pruning: Pruning::Aggressive,
            resources: Resources { big: 0, little: 0 },
            tasks: Vec::new(),
            stages: Vec::new(),
            feasible: false,
        }
    }

    /// Whether the memo holds the solve of exactly this instance.
    pub(crate) fn matches(
        &self,
        pruning: Pruning,
        chain: &TaskChain,
        resources: Resources,
    ) -> bool {
        self.pruning == pruning
            && self.resources == resources
            && self.tasks.len() == chain.len()
            && self
                .tasks
                .iter()
                .zip(chain.tasks())
                .all(|(&(wb, wl, rep), t)| {
                    wb == t.weight_big && wl == t.weight_little && rep == t.replicable
                })
    }
}

/// HeRAD's sweep memo: the solved DP table together with the key (chain
/// projection + pruning) it was solved for. The pool is *not* part of the
/// key — the table's own dimensions are, and any covered sub-pool extracts
/// from it directly (pool-delta warm starts across `(b, ℓ)` sweeps).
/// `valid` is dropped while the table is mid-mutation so a panicking solve
/// can never leave a half-written table behind a matching key.
#[derive(Debug, Default)]
pub(crate) struct HeradSweep {
    pub(crate) pruning: Pruning,
    pub(crate) tasks: Vec<(u64, u64, bool)>,
    pub(crate) valid: bool,
    pub(crate) table: Table,
}

impl HeradSweep {
    /// Whether the parked table was solved for this chain + pruning (at
    /// any dimensions — callers check coverage separately).
    pub(crate) fn matches(&self, pruning: Pruning, chain: &TaskChain) -> bool {
        self.valid
            && self.pruning == pruning
            && self.tasks.len() == chain.len()
            && self
                .tasks
                .iter()
                .zip(chain.tasks())
                .all(|(&(wb, wl, rep), t)| {
                    wb == t.weight_big && wl == t.weight_little && rep == t.replicable
                })
    }

    /// Re-keys the memo to a freshly solved chain (reuses the projection
    /// buffer's capacity; allocation-free once warmed past the largest
    /// chain).
    pub(crate) fn rekey(&mut self, pruning: Pruning, chain: &TaskChain) {
        self.pruning = pruning;
        self.tasks.clear();
        self.tasks.extend(
            chain
                .tasks()
                .iter()
                .map(|t| (t.weight_big, t.weight_little, t.replicable)),
        );
        self.valid = true;
    }
}

/// Reusable buffers for the scheduling hot paths. See the module docs.
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// HeRAD's keyed DP table (grow-only; stale cells are provably
    /// overwritten before any read). See [`HeradSweep`].
    pub(crate) herad_sweep: HeradSweep,
    /// HeRAD's last-solve replay memo (see [`HeradMemo`]).
    pub(crate) herad_memo: Option<HeradMemo>,
    /// Free-list of stage buffers for the binary search and the greedy
    /// recursions.
    stage_pool: Vec<Vec<Stage>>,
}

impl SchedScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        SchedScratch::default()
    }

    /// Rents a cleared stage buffer from the pool (allocation-free once
    /// the pool has warmed up).
    pub(crate) fn rent_stages(&mut self) -> Vec<Stage> {
        let mut buf = self.stage_pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a rented buffer to the pool for reuse.
    pub(crate) fn return_stages(&mut self, buf: Vec<Stage>) {
        self.stage_pool.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::CoreType;

    #[test]
    fn rented_buffers_come_back_cleared_with_capacity() {
        let mut scratch = SchedScratch::new();
        let mut buf = scratch.rent_stages();
        buf.extend((0..32).map(|i| Stage::new(i, i, 1, CoreType::Big)));
        let cap = buf.capacity();
        scratch.return_stages(buf);
        let again = scratch.rent_stages();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "capacity must be preserved");
    }

    #[test]
    fn pool_hands_out_distinct_buffers() {
        let mut scratch = SchedScratch::new();
        let a = scratch.rent_stages();
        let b = scratch.rent_stages();
        scratch.return_stages(a);
        scratch.return_stages(b);
        assert_eq!(scratch.stage_pool.len(), 2);
    }

    #[test]
    fn fresh_sweep_memo_matches_nothing() {
        use crate::chain::{Task, TaskChain};
        let sweep = HeradSweep::default();
        let c = TaskChain::new(vec![Task::new(1, 1, false)]);
        assert!(!sweep.matches(Pruning::Aggressive, &c));
    }
}
