//! Exhaustive search over all interval mappings — an oracle for testing
//! HeRAD's optimality on tiny instances.
//!
//! Enumerates every composition of the chain into contiguous stages and,
//! for each stage, every core count of each type; infeasible only beyond a
//! few tasks/cores, which is exactly where HeRAD takes over.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{Solution, Stage};

/// Exhaustive optimal scheduler for tiny instances (tests only, O(exp)).
///
/// Among all minimum-period solutions it returns one whose core usage is
/// Pareto-minimal (no same-period solution uses fewer big cores without
/// using more little cores, and vice versa), breaking remaining ties toward
/// fewer big cores then fewer total cores — consistent with the paper's
/// secondary objective.
#[derive(Clone, Copy, Debug, Default)]
pub struct BruteForce;

impl Scheduler for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    // The oracle is tests-only and exponential anyway, so it ignores the
    // scratch and allocates freely — only the result contract matters.
    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        _scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        let mut best: Option<(Ratio, Resources, Solution)> = None;
        let mut stages = Vec::new();
        explore(chain, 0, resources, Ratio::ZERO, &mut stages, &mut best);
        match best {
            Some((_, _, s)) => {
                *out = s;
                true
            }
            None => {
                out.stages_mut().clear();
                false
            }
        }
    }
}

/// All minimum-period solutions of the instance (used to verify that
/// HeRAD's core usage is Pareto-optimal among them).
#[must_use]
pub fn all_optimal_solutions(chain: &TaskChain, resources: Resources) -> Vec<Solution> {
    let mut all: Vec<(Ratio, Solution)> = Vec::new();
    let mut stages = Vec::new();
    collect(chain, 0, resources, Ratio::ZERO, &mut stages, &mut all);
    let best = match all.iter().map(|(p, _)| *p).min() {
        Some(p) => p,
        None => return Vec::new(),
    };
    all.into_iter()
        .filter(|(p, _)| *p == best)
        .map(|(_, s)| s)
        .collect()
}

/// The exhaustively verified optimal period, without extracting a schedule.
/// `None` when no valid mapping exists (e.g. a zero-core pool).
#[must_use]
pub fn optimal_period(chain: &TaskChain, resources: Resources) -> Option<Ratio> {
    BruteForce
        .schedule(chain, resources)
        .map(|s| s.period(chain))
}

/// The optimal period together with the *distinct core usages* of every
/// minimum-period solution.
///
/// This is the memory-light form of [`all_optimal_solutions`] for
/// differential testing: tie-break conformance only needs the set of
/// `(big, little)` usages on the optimality front, not the solutions
/// themselves (of which tiny instances can already have tens of
/// thousands). Solutions whose period exceeds the best found so far are
/// pruned during the walk, so the usage set never holds suboptimal
/// entries.
#[must_use]
pub fn optimal_usage_front(
    chain: &TaskChain,
    resources: Resources,
) -> Option<(Ratio, Vec<Resources>)> {
    struct Front {
        best: Ratio,
        usages: Vec<Resources>,
    }

    fn walk(
        chain: &TaskChain,
        start: usize,
        left: Resources,
        used: Resources,
        period_so_far: Ratio,
        front: &mut Front,
    ) {
        if period_so_far > front.best {
            return;
        }
        let n = chain.len();
        if start == n {
            if period_so_far < front.best {
                front.best = period_so_far;
                front.usages.clear();
            }
            if !front.usages.contains(&used) {
                front.usages.push(used);
            }
            return;
        }
        for end in start..n {
            for v in CoreType::BOTH {
                let rep = chain.is_replicable(start, end);
                let max_r = if rep { left.of(v) } else { left.of(v).min(1) };
                for r in 1..=max_r {
                    let w = chain.stage_weight(start, end, r, v);
                    let mut next_used = used;
                    match v {
                        CoreType::Big => next_used.big += r,
                        CoreType::Little => next_used.little += r,
                    }
                    walk(
                        chain,
                        end + 1,
                        left.minus(v, r),
                        next_used,
                        period_so_far.max(w),
                        front,
                    );
                }
            }
        }
    }

    let mut front = Front {
        best: Ratio::INFINITY,
        usages: Vec::new(),
    };
    walk(
        chain,
        0,
        resources,
        Resources::new(0, 0),
        Ratio::ZERO,
        &mut front,
    );
    front.best.is_finite().then_some((front.best, front.usages))
}

fn explore(
    chain: &TaskChain,
    start: usize,
    left: Resources,
    period_so_far: Ratio,
    stages: &mut Vec<Stage>,
    best: &mut Option<(Ratio, Resources, Solution)>,
) {
    let n = chain.len();
    if start == n {
        let solution = Solution::new(stages.clone());
        let used = solution.used_cores();
        let better = match best {
            None => true,
            Some((bp, bu, _)) => {
                period_so_far < *bp
                    || (period_so_far == *bp
                        && (used.big < bu.big || (used.big == bu.big && used.little < bu.little)))
            }
        };
        if better {
            *best = Some((period_so_far, used, solution));
        }
        return;
    }
    // Bound: a completed prefix already worse than the best can be cut.
    if let Some((bp, _, _)) = best {
        if period_so_far > *bp {
            return;
        }
    }
    for end in start..n {
        for v in CoreType::BOTH {
            let rep = chain.is_replicable(start, end);
            let max_r = if rep { left.of(v) } else { left.of(v).min(1) };
            for r in 1..=max_r {
                let w = chain.stage_weight(start, end, r, v);
                stages.push(Stage::new(start, end, r, v));
                explore(
                    chain,
                    end + 1,
                    left.minus(v, r),
                    period_so_far.max(w),
                    stages,
                    best,
                );
                stages.pop();
            }
        }
    }
}

fn collect(
    chain: &TaskChain,
    start: usize,
    left: Resources,
    period_so_far: Ratio,
    stages: &mut Vec<Stage>,
    all: &mut Vec<(Ratio, Solution)>,
) {
    let n = chain.len();
    if start == n {
        all.push((period_so_far, Solution::new(stages.clone())));
        return;
    }
    for end in start..n {
        for v in CoreType::BOTH {
            let rep = chain.is_replicable(start, end);
            let max_r = if rep { left.of(v) } else { left.of(v).min(1) };
            for r in 1..=max_r {
                let w = chain.stage_weight(start, end, r, v);
                stages.push(Stage::new(start, end, r, v));
                collect(
                    chain,
                    end + 1,
                    left.minus(v, r),
                    period_so_far.max(w),
                    stages,
                    all,
                );
                stages.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    #[test]
    fn finds_the_known_optimum() {
        let c = TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
        ]);
        let s = BruteForce.schedule(&c, Resources::new(2, 1)).unwrap();
        assert!(s.validate(&c).is_ok());
        // stages {0} B (3) and {1,2} B (6) -> 6; or {0}B, {1}?, ...
        // best: {0}B=3, {1..2} on 1B = 6 -> 6; with the little core helping:
        // {0}B=3, {1}L=4, {2}B=4 -> 4.
        assert_eq!(s.period(&c), crate::ratio::Ratio::from_int(4));
    }

    #[test]
    fn no_solution_without_cores() {
        let c = TaskChain::new(vec![Task::new(1, 1, true)]);
        assert!(BruteForce.schedule(&c, Resources::new(0, 0)).is_none());
        assert!(all_optimal_solutions(&c, Resources::new(0, 0)).is_empty());
    }

    #[test]
    fn usage_front_matches_all_optimal_solutions() {
        let c = TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(1, 3, false),
        ]);
        for (b, l) in [(1, 0), (0, 2), (2, 1), (2, 2), (3, 3)] {
            let r = Resources::new(b, l);
            let (period, mut usages) = optimal_usage_front(&c, r).unwrap();
            assert_eq!(Some(period), optimal_period(&c, r));
            let all = all_optimal_solutions(&c, r);
            let mut expected: Vec<Resources> = Vec::new();
            for s in &all {
                assert_eq!(s.period(&c), period);
                let u = s.used_cores();
                if !expected.contains(&u) {
                    expected.push(u);
                }
            }
            let key = |u: &Resources| (u.big, u.little);
            usages.sort_unstable_by_key(key);
            expected.sort_unstable_by_key(key);
            assert_eq!(usages, expected, "usage front mismatch at {r}");
        }
    }

    #[test]
    fn usage_front_empty_pool_is_none() {
        let c = TaskChain::new(vec![Task::new(1, 1, true)]);
        assert!(optimal_usage_front(&c, Resources::new(0, 0)).is_none());
        assert!(optimal_period(&c, Resources::new(0, 0)).is_none());
    }

    #[test]
    fn all_optimal_solutions_share_the_best_period() {
        let c = TaskChain::new(vec![Task::new(2, 3, true), Task::new(2, 3, false)]);
        let r = Resources::new(1, 1);
        let best = BruteForce.schedule(&c, r).unwrap().period(&c);
        let all = all_optimal_solutions(&c, r);
        assert!(!all.is_empty());
        for s in &all {
            assert_eq!(s.period(&c), best);
            assert!(s.validate(&c).is_ok());
        }
    }
}
