//! `Schedule` (Algorithm 1): the binary search over target periods shared by
//! OTAC, FERTAC and 2CATAC.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::SchedScratch;
use crate::solution::{period_of, stages_are_valid, Solution, Stage};

/// The closed search interval and tolerance used by [`schedule_binary_search`].
#[derive(Clone, Copy, Debug)]
pub struct PeriodBounds {
    /// Lower bound: work replicated over every core, or the heaviest
    /// sequential task, whichever is larger (Algorithm 1, line 1).
    pub lower: Ratio,
    /// Upper bound: a period at which the greedy provably finds a solution.
    pub upper: Ratio,
    /// Search tolerance `ε`.
    pub epsilon: Ratio,
}

impl PeriodBounds {
    /// Computes bounds for a chain on the given resources.
    ///
    /// Two deliberate deviations from Algorithm 1, both documented in
    /// DESIGN.md:
    ///
    /// * The paper assumes every task is fastest on a big core and uses
    ///   big-core weights for the lower bound. We take, per task, the
    ///   fastest *available* core type, which keeps the bound valid for
    ///   arbitrary profiles and for single-type resource pools (OTAC).
    /// * The upper bound is the whole chain on one core of the slowest
    ///   available type — a period at which every greedy in this crate
    ///   provably succeeds (one single-core stage) — instead of
    ///   `lower + max_τ w_τ^L`, which is not always reachable by a greedy
    ///   on heterogeneous pools. `ε` is `1/(b+l)²` instead of `1/(b+l)`:
    ///   distinct achievable periods are separated by at least that much,
    ///   which makes the search resolve the homogeneous-optimal period
    ///   exactly. Both changes add only O(log) iterations.
    #[must_use]
    pub fn compute(chain: &TaskChain, resources: Resources) -> Option<PeriodBounds> {
        let total = resources.total();
        if total == 0 {
            return None;
        }
        // Fixed-size buffer instead of a `Vec<CoreType>`: bounds are
        // recomputed on every solve, and the hot path must not allocate.
        let mut type_buf = [CoreType::Big; 2];
        let mut n_types = 0;
        for v in CoreType::BOTH {
            if resources.of(v) > 0 {
                type_buf[n_types] = v;
                n_types += 1;
            }
        }
        let types = &type_buf[..n_types];
        let best_weight = |i: usize| {
            types
                .iter()
                .map(|&v| chain.task(i).weight(v))
                .min()
                .unwrap()
        };
        let mut sum_best: u128 = 0;
        let mut max_seq_best: u64 = 0;
        for i in 0..chain.len() {
            let w = best_weight(i);
            sum_best += u128::from(w);
            if !chain.task(i).replicable {
                max_seq_best = max_seq_best.max(w);
            }
        }
        let lower = Ratio::new(sum_best, u128::from(total)).max(Ratio::from_int(max_seq_best));
        let upper = types
            .iter()
            .map(|&v| Ratio::from_int(chain.total(v)))
            .max()
            .unwrap();
        let epsilon = Ratio::new(1, u128::from(total) * u128::from(total));
        Some(PeriodBounds {
            lower,
            upper,
            epsilon,
        })
    }
}

/// `Schedule` (Algorithm 1), allocation-free: binary search for the
/// smallest target period at which `compute_solution` fills a valid stage
/// list. `compute_solution` receives the chain, the resources, the target
/// period, the shared scratch, and the stage buffer to fill; it returns
/// `false` (buffer contents then ignored) when the greedy fails at that
/// period.
///
/// The best stage list so far lives in `out`; probes fill a candidate
/// buffer rented from `scratch` and the two are swapped on improvement, so
/// the search itself performs no heap allocation once the scratch pool has
/// warmed up. Returns `false` — leaving `out` empty — only when no valid
/// schedule exists at any period.
pub fn schedule_binary_search_into<F>(
    chain: &TaskChain,
    resources: Resources,
    scratch: &mut SchedScratch,
    out: &mut Solution,
    mut compute_solution: F,
) -> bool
where
    F: FnMut(&TaskChain, Resources, Ratio, &mut SchedScratch, &mut Vec<Stage>) -> bool,
{
    out.stages_mut().clear();
    let Some(bounds) = PeriodBounds::compute(chain, resources) else {
        return false;
    };
    let mut p_min = bounds.lower;
    let mut p_max = bounds.upper;

    // Seed with the guaranteed-feasible upper bound so `p_max` always tracks
    // the period of a concrete solution.
    if !compute_solution(chain, resources, p_max, scratch, out.stages_mut())
        || !stages_are_valid(chain, resources, p_max, out.stages())
    {
        out.stages_mut().clear();
        return false;
    }
    p_max = period_of(chain, out.stages());

    let mut candidate = scratch.rent_stages();
    while p_max.saturating_sub(p_min) >= bounds.epsilon {
        let p_mid = p_min.midpoint(p_max);
        let ok = compute_solution(chain, resources, p_mid, scratch, &mut candidate);
        if ok && stages_are_valid(chain, resources, p_mid, &candidate) {
            // The target can only decrease from here.
            p_max = period_of(chain, &candidate);
            std::mem::swap(out.stages_mut(), &mut candidate);
        } else {
            // The target can only increase.
            p_min = p_mid;
        }
    }
    scratch.return_stages(candidate);
    true
}

/// `Schedule` (Algorithm 1): the allocating convenience wrapper around
/// [`schedule_binary_search_into`]. `compute_solution` receives the chain,
/// the resources, and the target period, and returns a (possibly empty =
/// failed) solution.
///
/// Returns `None` only when no valid schedule exists at any period (no
/// cores, or the greedy fails even at the single-stage upper bound — which
/// cannot happen for the ComputeSolution implementations in this crate).
pub fn schedule_binary_search<F>(
    chain: &TaskChain,
    resources: Resources,
    mut compute_solution: F,
) -> Option<Solution>
where
    F: FnMut(&TaskChain, Resources, Ratio) -> Solution,
{
    let mut scratch = SchedScratch::new();
    let mut out = Solution::empty();
    schedule_binary_search_into(
        chain,
        resources,
        &mut scratch,
        &mut out,
        |c, r, p, _scratch, buf| {
            let s = compute_solution(c, r, p);
            buf.clear();
            buf.extend_from_slice(s.stages());
            !buf.is_empty()
        },
    )
    .then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::sched::support::{compute_stage, stage_fits};
    use crate::solution::Stage;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn bounds_require_cores() {
        assert!(PeriodBounds::compute(&chain(), Resources::new(0, 0)).is_none());
    }

    #[test]
    fn bounds_bracket_achievable_periods() {
        let c = chain();
        let b = PeriodBounds::compute(&c, Resources::new(2, 2)).unwrap();
        // lower = max(16/4, 3) = 4 (big weights are the per-task minima)
        assert_eq!(b.lower, Ratio::from_int(4));
        // upper = whole chain on one little core = 32
        assert_eq!(b.upper, Ratio::from_int(32));
        assert_eq!(b.epsilon, Ratio::new(1, 16));
        assert!(b.lower <= b.upper);
    }

    #[test]
    fn bounds_use_available_type_only() {
        let c = chain();
        let b = PeriodBounds::compute(&c, Resources::new(0, 4)).unwrap();
        // only little cores: lower = max(32/4, 6) = 8
        assert_eq!(b.lower, Ratio::from_int(8));
        assert_eq!(b.upper, Ratio::from_int(32));
    }

    /// A minimal greedy (single core type, big) to exercise the search.
    fn greedy_big(chain: &TaskChain, resources: Resources, target: Ratio) -> Solution {
        let mut stages = Vec::new();
        let mut start = 0;
        let mut left = resources.big;
        while start < chain.len() {
            let (e, u) = compute_stage(chain, start, left, CoreType::Big, target);
            if !stage_fits(chain, start, e, u, left, CoreType::Big, target) {
                return Solution::empty();
            }
            stages.push(Stage::new(start, e, u, CoreType::Big));
            left -= u;
            start = e + 1;
        }
        Solution::new(stages)
    }

    #[test]
    fn binary_search_converges_to_a_valid_solution() {
        let c = chain();
        let r = Resources::new(3, 0);
        let s = schedule_binary_search(&c, r, greedy_big).unwrap();
        assert!(s.validate(&c).is_ok());
        let used = s.used_cores();
        assert!(used.big <= 3 && used.little == 0);
        // With 3 big cores the exhaustive optimum is 7 (e.g. the 3-stage
        // split [0,1] | [2] | [3,4] with weights 5, 4, 7; replication cannot
        // help because isolating the replicable run [1..3] already takes
        // three single-core stages).
        assert_eq!(s.period(&c), Ratio::from_int(7));
    }

    #[test]
    fn binary_search_handles_single_core() {
        let c = chain();
        let s = schedule_binary_search(&c, Resources::new(1, 0), greedy_big).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.period(&c), Ratio::from_int(16));
    }

    #[test]
    fn binary_search_none_without_cores() {
        let c = chain();
        assert!(schedule_binary_search(&c, Resources::new(0, 0), greedy_big).is_none());
    }
}
