//! `schedule_many`: batched scheduling over a crossbeam scoped worker
//! pool with per-thread [`SchedScratch`].
//!
//! Sweeps (the paper's Table I campaign, the `synthetic_sweep` example,
//! service warm-up) call the same strategy on thousands of independent
//! instances. Fanning the batch across scoped threads keeps the wall
//! clock low while each worker's private scratch keeps the per-solve
//! allocation count at zero after warm-up. Workers claim jobs from a
//! shared atomic cursor, so every job is solved exactly once and the
//! result vector is bit-identical to sequential [`Scheduler::schedule`]
//! calls regardless of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::chain::TaskChain;
use crate::resources::Resources;
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::Solution;

/// Schedules every `(chain, resources)` job with `strategy` across
/// `workers` scoped threads (clamped to `1..=jobs.len()`). Returns one
/// entry per job, in job order; `None` marks an infeasible instance, just
/// like [`Scheduler::schedule`]. With one worker (or one job) everything
/// runs on the calling thread.
#[must_use]
pub fn schedule_many(
    strategy: &dyn Scheduler,
    jobs: &[(&TaskChain, Resources)],
    workers: usize,
) -> Vec<Option<Solution>> {
    let workers = workers.max(1).min(jobs.len().max(1));
    if workers == 1 {
        let mut scratch = SchedScratch::new();
        return jobs
            .iter()
            .map(|&(chain, resources)| {
                let mut out = Solution::empty();
                strategy
                    .schedule_into(chain, resources, &mut scratch, &mut out)
                    .then_some(out)
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<Solution>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = SchedScratch::new();
                    let mut local: Vec<(usize, Option<Solution>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(chain, resources)) = jobs.get(i) else {
                            break;
                        };
                        let mut out = Solution::empty();
                        let ok = strategy.schedule_into(chain, resources, &mut scratch, &mut out);
                        local.push((i, ok.then_some(out)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("schedule_many worker panicked") {
                results[i] = result;
            }
        }
    })
    .expect("schedule_many scope");
    results
}

/// Convenience for the common sweep shape: many chains, one pool.
#[must_use]
pub fn schedule_chains(
    strategy: &dyn Scheduler,
    chains: &[TaskChain],
    resources: Resources,
    workers: usize,
) -> Vec<Option<Solution>> {
    let jobs: Vec<(&TaskChain, Resources)> = chains.iter().map(|c| (c, resources)).collect();
    schedule_many(strategy, &jobs, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::sched::{Fertac, Herad};

    fn chains() -> Vec<TaskChain> {
        (1..=9u64)
            .map(|k| {
                TaskChain::new(
                    (0..k)
                        .map(|i| Task::new(1 + (i * k) % 7, 2 + (i + k) % 9, i % 2 == 0))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn batched_results_match_sequential_schedule() {
        let chains = chains();
        let resources = Resources::new(2, 3);
        for workers in [1, 2, 8] {
            let got = schedule_chains(&Herad::new(), &chains, resources, workers);
            assert_eq!(got.len(), chains.len());
            for (chain, result) in chains.iter().zip(&got) {
                assert_eq!(result, &Herad::new().schedule(chain, resources));
            }
        }
    }

    #[test]
    fn infeasible_jobs_stay_none() {
        let chains = chains();
        let got = schedule_chains(&Fertac, &chains, Resources::new(0, 0), 4);
        assert!(got.iter().all(Option::is_none));
    }

    #[test]
    fn mixed_pools_keep_job_order() {
        let chains = chains();
        let jobs: Vec<(&TaskChain, Resources)> = chains
            .iter()
            .enumerate()
            .map(|(i, c)| (c, Resources::new(i as u64 % 3, (i as u64 + 1) % 3)))
            .collect();
        let sequential: Vec<Option<Solution>> =
            jobs.iter().map(|&(c, r)| Fertac.schedule(c, r)).collect();
        assert_eq!(schedule_many(&Fertac, &jobs, 8), sequential);
    }
}
