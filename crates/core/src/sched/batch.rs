//! `schedule_many` / `schedule_many_with`: batched scheduling over a
//! crossbeam scoped worker pool with per-thread [`SchedScratch`].
//!
//! Sweeps (the paper's Table I campaign, the `synthetic_sweep` example,
//! service warm-up) call the same strategy on thousands of independent
//! instances. Fanning the batch across scoped threads keeps the wall
//! clock low while each worker's private scratch keeps the per-solve
//! allocation count at zero after warm-up. Workers claim *chunks* of
//! consecutive jobs from a shared atomic cursor — chunking matters twice:
//! it amortizes the cursor contention over many jobs, and it hands each
//! worker a consecutive run of jobs, which is exactly the access pattern
//! HeRAD's sweep memo turns into pool-delta warm starts (consecutive jobs
//! in a sweep share a chain or grow a pool). Every job is solved exactly
//! once and the result vector is bit-identical to sequential
//! [`Scheduler::schedule`] calls regardless of worker count or chunk
//! boundaries.
//!
//! [`schedule_many_with`] is the primitive: the caller owns the worker
//! scratches, so repeated batches (benchmark rounds, campaign strategies
//! over the same instance set, service warm-up waves) keep every
//! worker's DP table, memo and buffer pool hot across calls.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::chain::TaskChain;
use crate::resources::Resources;
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::Solution;

/// How many chunks each worker should get on average: >1 so a worker that
/// lands expensive jobs does not serialize the tail (work stealing via
/// the shared cursor), small enough that a chunk still amortizes claiming
/// and keeps consecutive sweep jobs on one scratch.
const CHUNKS_PER_WORKER: usize = 4;

/// A raw view of the result vector: workers write disjoint, pre-claimed
/// index ranges.
struct SharedResults {
    ptr: *mut Option<Solution>,
}

// SAFETY: each result index belongs to exactly one chunk, each chunk is
// claimed by exactly one worker (atomic fetch_add), and the scope join
// orders every write before the owner reads the vector again. Slots are
// pre-filled with `None`, and the raw `write` only ever replaces `None`
// (the overwritten value owns no heap), so skipping the drop is sound.
unsafe impl Send for SharedResults {}
unsafe impl Sync for SharedResults {}

/// Schedules every `(chain, resources)` job with `strategy`, one scoped
/// worker per scratch in `scratches` (capped at the job count). Returns
/// one entry per job, in job order; `None` marks an infeasible instance,
/// just like [`Scheduler::schedule`]. With one scratch (or one job)
/// everything runs on the calling thread.
///
/// The scratches are the warm state: pass the same slice to every batch
/// and each worker keeps its HeRAD sweep table, replay memo and stage
/// pool across batches. An empty slice is allowed and behaves like a
/// single fresh scratch.
#[must_use]
pub fn schedule_many_with(
    strategy: &dyn Scheduler,
    jobs: &[(&TaskChain, Resources)],
    scratches: &mut [SchedScratch],
) -> Vec<Option<Solution>> {
    let workers = scratches.len().min(jobs.len()).max(1);
    if workers == 1 {
        let mut fallback;
        let scratch = match scratches.first_mut() {
            Some(s) => s,
            None => {
                fallback = SchedScratch::new();
                &mut fallback
            }
        };
        return jobs
            .iter()
            .map(|&(chain, resources)| {
                let mut out = Solution::empty();
                strategy
                    .schedule_into(chain, resources, scratch, &mut out)
                    .then_some(out)
            })
            .collect();
    }

    let chunk = jobs.len().div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<Solution>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let shared = SharedResults {
        ptr: results.as_mut_ptr(),
    };
    crossbeam::thread::scope(|scope| {
        let cursor = &cursor;
        let shared = &shared;
        for scratch in scratches.iter_mut().take(workers) {
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= jobs.len() {
                    break;
                }
                let end = (start + chunk).min(jobs.len());
                for (i, &(chain, resources)) in jobs[start..end].iter().enumerate() {
                    let mut out = Solution::empty();
                    let ok = strategy.schedule_into(chain, resources, scratch, &mut out);
                    // SAFETY: index `start + i` lies in this worker's
                    // claimed chunk; see `SharedResults`.
                    unsafe { shared.ptr.add(start + i).write(ok.then_some(out)) };
                }
            });
        }
    })
    .expect("schedule_many scope");
    results
}

/// [`schedule_many_with`] with `workers` freshly allocated scratches
/// (clamped to `1..=jobs.len()`): the right call for one-shot batches
/// where no warm state outlives the batch.
#[must_use]
pub fn schedule_many(
    strategy: &dyn Scheduler,
    jobs: &[(&TaskChain, Resources)],
    workers: usize,
) -> Vec<Option<Solution>> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let mut scratches: Vec<SchedScratch> = (0..workers).map(|_| SchedScratch::new()).collect();
    schedule_many_with(strategy, jobs, &mut scratches)
}

/// Convenience for the common sweep shape: many chains, one pool.
#[must_use]
pub fn schedule_chains(
    strategy: &dyn Scheduler,
    chains: &[TaskChain],
    resources: Resources,
    workers: usize,
) -> Vec<Option<Solution>> {
    let jobs: Vec<(&TaskChain, Resources)> = chains.iter().map(|c| (c, resources)).collect();
    schedule_many(strategy, &jobs, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::sched::{Fertac, Herad};

    fn chains() -> Vec<TaskChain> {
        (1..=9u64)
            .map(|k| {
                TaskChain::new(
                    (0..k)
                        .map(|i| Task::new(1 + (i * k) % 7, 2 + (i + k) % 9, i % 2 == 0))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn batched_results_match_sequential_schedule() {
        let chains = chains();
        let resources = Resources::new(2, 3);
        for workers in [1, 2, 8] {
            let got = schedule_chains(&Herad::new(), &chains, resources, workers);
            assert_eq!(got.len(), chains.len());
            for (chain, result) in chains.iter().zip(&got) {
                assert_eq!(result, &Herad::new().schedule(chain, resources));
            }
        }
    }

    #[test]
    fn infeasible_jobs_stay_none() {
        let chains = chains();
        let got = schedule_chains(&Fertac, &chains, Resources::new(0, 0), 4);
        assert!(got.iter().all(Option::is_none));
    }

    #[test]
    fn mixed_pools_keep_job_order() {
        let chains = chains();
        let jobs: Vec<(&TaskChain, Resources)> = chains
            .iter()
            .enumerate()
            .map(|(i, c)| (c, Resources::new(i as u64 % 3, (i as u64 + 1) % 3)))
            .collect();
        let sequential: Vec<Option<Solution>> =
            jobs.iter().map(|&(c, r)| Fertac.schedule(c, r)).collect();
        assert_eq!(schedule_many(&Fertac, &jobs, 8), sequential);
    }

    #[test]
    fn persistent_scratches_stay_warm_and_correct_across_batches() {
        let chains = chains();
        let jobs: Vec<(&TaskChain, Resources)> =
            chains.iter().map(|c| (c, Resources::new(3, 2))).collect();
        let sequential: Vec<Option<Solution>> = jobs
            .iter()
            .map(|&(c, r)| Herad::new().schedule(c, r))
            .collect();
        let mut scratches: Vec<SchedScratch> = (0..3).map(|_| SchedScratch::new()).collect();
        // Repeated batches over the same scratches: warm memos and sweep
        // tables from earlier rounds (and earlier chains on the same
        // worker) must never change a result.
        for _ in 0..3 {
            assert_eq!(
                schedule_many_with(&Herad::new(), &jobs, &mut scratches),
                sequential
            );
        }
        // A different job set over the now-dirty scratches is still exact.
        let grown: Vec<(&TaskChain, Resources)> =
            chains.iter().map(|c| (c, Resources::new(4, 4))).collect();
        let grown_sequential: Vec<Option<Solution>> = grown
            .iter()
            .map(|&(c, r)| Herad::new().schedule(c, r))
            .collect();
        assert_eq!(
            schedule_many_with(&Herad::new(), &grown, &mut scratches),
            grown_sequential
        );
    }

    #[test]
    fn empty_scratch_slice_and_chunk_edges_are_exact() {
        let chains = chains();
        let jobs: Vec<(&TaskChain, Resources)> =
            chains.iter().map(|c| (c, Resources::new(1, 2))).collect();
        let sequential: Vec<Option<Solution>> =
            jobs.iter().map(|&(c, r)| Fertac.schedule(c, r)).collect();
        // No scratches at all → single fresh scratch on the caller thread.
        assert_eq!(schedule_many_with(&Fertac, &jobs, &mut []), sequential);
        // More workers than jobs, and worker counts that make the chunk
        // size 1 (maximal claiming traffic) or larger than the job count.
        for workers in [2, 5, 9, 32] {
            let mut scratches: Vec<SchedScratch> =
                (0..workers).map(|_| SchedScratch::new()).collect();
            assert_eq!(
                schedule_many_with(&Fertac, &jobs, &mut scratches),
                sequential,
                "diverged with {workers} scratches"
            );
        }
        // Empty job list stays empty.
        assert!(schedule_many_with(&Fertac, &[], &mut []).is_empty());
    }
}
