//! Common support methods shared by OTAC, FERTAC and 2CATAC
//! (Algorithms 2 and 3 of the paper).

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::CoreType;

/// `MaxPacking` (Algorithm 3): the largest `e >= start` such that the stage
/// `[start, e]` with `c` cores of type `v` fits in period `target`; returns
/// `start` even when not even one task fits (the stage always holds at least
/// one task — validity is checked by the caller).
///
/// Stage weights are monotone non-decreasing in `e` (sums grow and
/// replicability can only be lost), so a linear walk is exact.
#[must_use]
pub fn max_packing(chain: &TaskChain, start: usize, c: u64, v: CoreType, target: Ratio) -> usize {
    let n = chain.len();
    // The first task is kept even when it does not fit on its own
    // (`max(s, ...)` in Algorithm 3); extensions are only taken while the
    // stage weight stays within the target.
    let mut e = start;
    while e + 1 < n && chain.stage_weight(start, e + 1, c, v) <= target {
        e += 1;
    }
    e
}

/// `RequiredCores` (Algorithm 3): `ceil(w([start, end], 1, v) / target)`,
/// the number of cores a replicable stage needs to meet `target`.
#[must_use]
pub fn required_cores(
    chain: &TaskChain,
    start: usize,
    end: usize,
    v: CoreType,
    target: Ratio,
) -> u64 {
    let w = chain.stage_weight(start, end, 1, v);
    w.div_ceil(target)
        .expect("single-core stage weight is always finite")
        .max(1)
}

/// `ComputeStage` (Algorithm 2): where to end the stage starting at `start`
/// and how many cores (of type `v`, at most `c` available) it takes to
/// respect `target`. Returns `(end, used)`. The result may be invalid
/// (weight above `target` or `used > c`); callers check with `IsValid`.
#[must_use]
pub fn compute_stage(
    chain: &TaskChain,
    start: usize,
    c: u64,
    v: CoreType,
    target: Ratio,
) -> (usize, u64) {
    let n = chain.len();
    // Pack as many tasks as possible on a single core.
    let mut e = max_packing(chain, start, 1, v, target);
    // Cores needed when the first task alone exceeds the target period.
    let mut u = required_cores(chain, start, e, v, target);
    if e != n - 1 && chain.is_replicable(start, e) {
        // Extend a replicable stage over the whole replicable run.
        e = chain.final_replicable_task(start, e);
        u = required_cores(chain, start, e, v, target);
        if u > c {
            // Not enough cores for the full run: shrink to what `c` cores fit.
            e = max_packing(chain, start, c, v, target);
            u = c;
        } else if e != n - 1 && u >= 2 {
            // A sequential task follows. Check whether dropping this stage's
            // final tasks to the next stage saves one core here while the
            // moved tasks plus the next task still fit on a single core.
            let f = max_packing(chain, start, u - 1, v, target);
            // `max_packing` keeps the first task even when it does not fit
            // (`max(s, ...)`): only reduce when the shrunk stage actually
            // meets the target with one core fewer.
            if chain.stage_weight(start, f, u - 1, v) <= target
                && required_cores(chain, f + 1, e + 1, v, target) == 1
            {
                e = f;
                u -= 1;
            }
        }
    }
    (e, u)
}

/// Validity of a single (partial) stage: at least one core, within the `c`
/// available, and weight within `target` — the single-stage specialization
/// of `IsValid` used inside `ComputeSolution`.
#[must_use]
pub fn stage_fits(
    chain: &TaskChain,
    start: usize,
    end: usize,
    used: u64,
    c: u64,
    v: CoreType,
    target: Ratio,
) -> bool {
    used >= 1 && used <= c && chain.stage_weight(start, end, used, v) <= target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        // big weights:    3  2  4  6  1   (idx 0..4)
        // little weights: 6  4  8 12  2
        // replicable:     N  Y  Y  Y  N
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn max_packing_respects_target() {
        let c = chain();
        // from task 0 (seq) on 1 big core, target 5: tasks 0+1 = 5 fits, +2 = 9 no
        assert_eq!(max_packing(&c, 0, 1, CoreType::Big, Ratio::from_int(5)), 1);
        // target 4: only task 0 (3) fits alone; adding task 1 gives 5 > 4
        assert_eq!(max_packing(&c, 0, 1, CoreType::Big, Ratio::from_int(4)), 0);
        // target smaller than the first task still returns the first task
        assert_eq!(max_packing(&c, 0, 1, CoreType::Big, Ratio::from_int(1)), 0);
        // replicable run with 2 cores: [1..3] sums 12, /2 = 6 <= 6
        assert_eq!(max_packing(&c, 1, 2, CoreType::Big, Ratio::from_int(6)), 3);
        // zero cores: infinite weight, packs only the mandatory first task
        assert_eq!(
            max_packing(&c, 1, 0, CoreType::Big, Ratio::from_int(100)),
            1
        );
    }

    #[test]
    fn max_packing_accounts_for_replicability_loss() {
        let c = chain();
        // starting at 1 with 3 cores, target 4: [1..3] = 12/3 = 4 fits;
        // adding task 4 (seq) jumps the weight to the plain sum 13 > 4.
        assert_eq!(max_packing(&c, 1, 3, CoreType::Big, Ratio::from_int(4)), 3);
    }

    #[test]
    fn required_cores_is_ceiling() {
        let c = chain();
        // [1..3] big sum = 12; target 5 -> ceil(12/5) = 3
        assert_eq!(
            required_cores(&c, 1, 3, CoreType::Big, Ratio::from_int(5)),
            3
        );
        assert_eq!(
            required_cores(&c, 1, 3, CoreType::Big, Ratio::from_int(12)),
            1
        );
        // never returns 0
        assert_eq!(
            required_cores(&c, 4, 4, CoreType::Big, Ratio::from_int(100)),
            1
        );
    }

    #[test]
    fn compute_stage_extends_replicable_runs() {
        let c = chain();
        // start at 1, plenty of cores, target 4 on big: single-core packing
        // stops at task 1 (2) + task 2 (4) = 6 > 4 -> e=1; replicable, so
        // extend to the full run [1..3] (sum 12), u = ceil(12/4) = 3.
        let (e, u) = compute_stage(&c, 1, 8, CoreType::Big, Ratio::from_int(4));
        assert_eq!((e, u), (3, 3));
    }

    #[test]
    fn compute_stage_shrinks_when_cores_are_short() {
        let c = chain();
        // same as above but only 2 cores available: 12/2 = 6 > 4 -> shrink to
        // what 2 cores fit: [1..3] with 2 cores is 6 > 4; [1..2] is 6/2 = 3.
        let (e, u) = compute_stage(&c, 1, 2, CoreType::Big, Ratio::from_int(4));
        assert_eq!((e, u), (2, 2));
    }

    #[test]
    fn compute_stage_may_leave_a_core_for_the_next_stage() {
        // Replicable run [0..1] with weights 4,4 then a sequential task 4.
        // Target 4: full run needs ceil(8/4) = 2 cores. With u-1 = 1 core the
        // packing keeps [0..0]; moved task 1 plus next task 2 weigh 8 -> 2
        // cores, not 1: no reduction. With target 8 everything fits one core.
        let c = TaskChain::new(vec![
            Task::new(4, 8, true),
            Task::new(4, 8, true),
            Task::new(4, 8, false),
        ]);
        let (e, u) = compute_stage(&c, 0, 4, CoreType::Big, Ratio::from_int(4));
        assert_eq!((e, u), (1, 2));

        // Now make the tail light so moving it pays: run [0..1] weights 4,1,
        // sequential task 1. Target 4: packing one core gives [0..0]? 4+1=5>4
        // -> e=0, extend run to [0..1], u = ceil(5/4) = 2 > 1 core saved
        // check: f = max_packing(0, 1, ..) = 0 wait 4 <= 4 -> f covers [0..0];
        // moved [1..1] + next task [2..2] weigh 2 -> 1 core -> shrink.
        let c = TaskChain::new(vec![
            Task::new(4, 8, true),
            Task::new(1, 2, true),
            Task::new(1, 2, false),
        ]);
        let (e, u) = compute_stage(&c, 0, 4, CoreType::Big, Ratio::from_int(4));
        assert_eq!((e, u), (0, 1));
    }

    #[test]
    fn compute_stage_final_stage_is_not_extended() {
        let c = chain();
        // start at 4 (last task): nothing to extend
        let (e, u) = compute_stage(&c, 4, 4, CoreType::Big, Ratio::from_int(10));
        assert_eq!((e, u), (4, 1));
    }

    #[test]
    fn stage_fits_checks_cores_and_weight() {
        let c = chain();
        assert!(stage_fits(
            &c,
            1,
            3,
            3,
            4,
            CoreType::Big,
            Ratio::from_int(4)
        ));
        assert!(!stage_fits(
            &c,
            1,
            3,
            5,
            4,
            CoreType::Big,
            Ratio::from_int(4)
        ));
        assert!(!stage_fits(
            &c,
            1,
            3,
            2,
            4,
            CoreType::Big,
            Ratio::from_int(4)
        ));
        assert!(!stage_fits(
            &c,
            1,
            3,
            0,
            4,
            CoreType::Big,
            Ratio::from_int(99)
        ));
    }
}
