//! 2CATAC — *Two-Choice Allocation for TAsk Chains* (Section IV-B,
//! Algorithms 5 and 6): a greedy heuristic that builds each stage with
//! *both* core types and keeps the better of the two resulting solutions.
//! Exponential in the number of stages in the worst case.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::binary_search::schedule_binary_search_into;
use crate::sched::support::{compute_stage, stage_fits};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{stages_are_valid, used_cores_of, Solution, Stage};

/// The 2CATAC scheduler.
///
/// `node_budget` optionally bounds the number of recursion nodes explored
/// *per target period* to protect callers from the worst-case exponential
/// blow-up; when the budget is exhausted the current subtree fails, which
/// can only make the final schedule more conservative (the search still
/// returns a valid solution — at worst the single-stage fallback). The
/// paper's experiments use the unbounded variant; so does `Twocatac::new()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Twocatac {
    node_budget: Option<u64>,
}

impl Twocatac {
    /// Unbounded 2CATAC, as evaluated in the paper.
    #[must_use]
    pub fn new() -> Self {
        Twocatac { node_budget: None }
    }

    /// 2CATAC with a cap on recursion nodes per binary-search probe.
    #[must_use]
    pub fn with_node_budget(budget: u64) -> Self {
        Twocatac {
            node_budget: Some(budget),
        }
    }
}

impl Scheduler for Twocatac {
    fn name(&self) -> &'static str {
        "2CATAC"
    }

    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        schedule_binary_search_into(chain, resources, scratch, out, |c, r, p, s, buf| {
            let mut nodes_left = self.node_budget.unwrap_or(u64::MAX);
            compute_solution_into(c, 0, r, p, &mut nodes_left, s, buf)
        })
    }
}

/// `ComputeSolution` for 2CATAC (Algorithm 5): builds the stage starting at
/// `start` once per core type, recurses on both, and keeps the better
/// combined solution in `out`. The branch buffers are rented from the
/// scratch stage pool, so a deep search reuses a handful of vectors instead
/// of allocating one per node. Returns `false` (clearing `out`) when
/// neither branch yields a valid suffix.
fn compute_solution_into(
    chain: &TaskChain,
    start: usize,
    resources: Resources,
    target: Ratio,
    nodes_left: &mut u64,
    scratch: &mut SchedScratch,
    out: &mut Vec<Stage>,
) -> bool {
    out.clear();
    if *nodes_left == 0 {
        return false;
    }
    *nodes_left -= 1;
    let n = chain.len();
    let mut big = scratch.rent_stages();
    let mut little = scratch.rent_stages();
    let mut filled = [false, false];
    for (slot, v) in CoreType::BOTH.into_iter().enumerate() {
        let buf = if v == CoreType::Big {
            &mut big
        } else {
            &mut little
        };
        let available = resources.of(v);
        let (end, used) = compute_stage(chain, start, available, v, target);
        if !stage_fits(chain, start, end, used, available, v, target) {
            continue; // no valid stage with this core type
        }
        let stage = Stage::new(start, end, used, v);
        if end == n - 1 {
            buf.clear();
            buf.push(stage);
            filled[slot] = true;
            continue;
        }
        let remaining = resources.minus(v, used);
        if compute_solution_into(chain, end + 1, remaining, target, nodes_left, scratch, buf)
            && stages_are_valid(chain, remaining, target, buf)
        {
            buf.insert(0, stage); // the `·` concatenation of Algorithm 5
            filled[slot] = true;
        }
    }
    let big_valid = filled[0] && stages_are_valid(chain, resources, target, &big);
    let little_valid = filled[1] && stages_are_valid(chain, resources, target, &little);
    let winner = choose_winner(
        big_valid,
        little_valid,
        used_cores_of(&big),
        used_cores_of(&little),
    );
    let ok = match winner {
        Some(CoreType::Big) => {
            std::mem::swap(out, &mut big);
            true
        }
        Some(CoreType::Little) => {
            std::mem::swap(out, &mut little);
            true
        }
        None => false,
    };
    scratch.return_stages(big);
    scratch.return_stages(little);
    ok
}

/// The decision core of `ChooseBestSolution` (Algorithm 6) on usage
/// summaries alone: which of the big-built / little-built candidates wins,
/// or `None` when neither is valid. When both are valid: prefer the one
/// that better exchanges big cores for little ones, then the one using
/// fewer cores in total (ties favour the little-built solution).
fn choose_winner(
    big_valid: bool,
    little_valid: bool,
    ub: Resources,
    ul: Resources,
) -> Option<CoreType> {
    match (big_valid, little_valid) {
        (true, false) => Some(CoreType::Big),
        (false, true) => Some(CoreType::Little),
        (false, false) => None,
        (true, true) => {
            if ub.little > ul.little && ub.big < ul.big {
                // the big-built solution makes better usage of little cores
                Some(CoreType::Big)
            } else if ub.little < ul.little && ub.big > ul.big {
                Some(CoreType::Little)
            } else if ub.total() < ul.total() {
                Some(CoreType::Big) // fewer cores in total
            } else {
                Some(CoreType::Little)
            }
        }
    }
}

/// `ChooseBestSolution` (Algorithm 6) on whole solutions — the allocating
/// twin of [`choose_winner`], kept so tests can exercise the Algorithm 6
/// ordering on hand-built solutions.
#[cfg(test)]
fn choose_best_solution(
    s_big: Solution,
    s_little: Solution,
    chain: &TaskChain,
    resources: Resources,
    target: Ratio,
) -> Solution {
    match choose_winner(
        s_big.is_valid(chain, resources, target),
        s_little.is_valid(chain, resources, target),
        s_big.used_cores(),
        s_little.used_cores(),
    ) {
        Some(CoreType::Big) => s_big,
        Some(CoreType::Little) => s_little,
        None => Solution::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn produces_structurally_valid_schedules() {
        let c = chain();
        for (b, l) in [(1, 0), (0, 1), (2, 2), (4, 4), (1, 7), (7, 1)] {
            let r = Resources::new(b, l);
            let s = Twocatac::new().schedule(&c, r).unwrap();
            assert!(s.validate(&c).is_ok(), "invalid for {r}: {s}");
            let used = s.used_cores();
            assert!(used.big <= b && used.little <= l, "overuse for {r}: {s}");
        }
    }

    #[test]
    fn no_cores_means_no_schedule() {
        assert!(Twocatac::new()
            .schedule(&chain(), Resources::new(0, 0))
            .is_none());
    }

    #[test]
    fn at_least_as_good_as_fertac_on_this_chain() {
        use crate::sched::fertac::Fertac;
        let c = chain();
        for (b, l) in [(2, 2), (3, 1), (1, 3), (4, 4)] {
            let r = Resources::new(b, l);
            let two = Twocatac::new().schedule(&c, r).unwrap().period(&c);
            let fer = Fertac.schedule(&c, r).unwrap().period(&c);
            // Not a theorem in general, but holds on this small instance and
            // guards the implementation against regressions.
            assert!(two <= fer, "2CATAC {two} worse than FERTAC {fer} at {r}");
        }
    }

    #[test]
    fn node_budget_still_yields_valid_schedules() {
        let c = chain();
        let r = Resources::new(3, 3);
        let s = Twocatac::with_node_budget(4)
            .schedule(&c, r)
            .expect("the seeded upper bound always fits the budget");
        assert!(s.validate(&c).is_ok());
    }

    #[test]
    fn choose_best_prefers_big_little_exchange() {
        // Build two synthetic valid solutions over a replicable chain and
        // check the Algorithm 6 ordering directly.
        let c = TaskChain::new(vec![Task::new(4, 8, true), Task::new(4, 8, true)]);
        let r = Resources::new(4, 4);
        let t = Ratio::from_int(100);
        // "big-built" uses 1 big; "little-built" uses 2 little: the
        // little-built one has more little and fewer big cores — a strict
        // exchange — so it wins despite using more cores in total.
        let sb = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);
        let sl = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Little)]);
        let best = choose_best_solution(sb, sl.clone(), &c, r, t);
        assert_eq!(best, sl);
        // A solution trading 2 big for 1 big + 2 little loses to one with
        // more little and fewer big.
        let sb2 = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Little),
        ]);
        let sl2 = Solution::new(vec![
            Stage::new(0, 0, 2, CoreType::Big),
            Stage::new(1, 1, 1, CoreType::Little),
        ]);
        let best = choose_best_solution(sb2.clone(), sl2, &c, r, t);
        assert_eq!(best, sb2);
        // All little vs all big with equal totals: the exchange rule again
        // favours the little-built one.
        let sa = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Big)]);
        let sb3 = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Little)]);
        let best = choose_best_solution(sa, sb3.clone(), &c, r, t);
        assert_eq!(best, sb3);
    }

    #[test]
    fn invalid_candidates_are_rejected() {
        let c = chain();
        let r = Resources::new(1, 1);
        let t = Ratio::from_int(100);
        let valid = Solution::new(vec![Stage::new(0, 4, 1, CoreType::Big)]);
        assert_eq!(
            choose_best_solution(valid.clone(), Solution::empty(), &c, r, t),
            valid
        );
        assert_eq!(
            choose_best_solution(Solution::empty(), valid.clone(), &c, r, t),
            valid
        );
        assert!(choose_best_solution(Solution::empty(), Solution::empty(), &c, r, t).is_empty());
    }
}
