//! FERTAC — *First Efficient Resources for TAsk Chains* (Section IV-A,
//! Algorithm 4): a greedy heuristic that builds each stage with little
//! cores first and falls back to big cores only when the target period
//! cannot be respected otherwise.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::binary_search::schedule_binary_search_into;
use crate::sched::support::{compute_stage, stage_fits};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{Solution, Stage};

/// The FERTAC scheduler. Stateless; construct freely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fertac;

impl Scheduler for Fertac {
    fn name(&self) -> &'static str {
        "FERTAC"
    }

    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        schedule_binary_search_into(chain, resources, scratch, out, |c, r, p, _scratch, buf| {
            compute_solution_into(c, r, p, buf)
        })
    }
}

/// `ComputeSolution` for FERTAC (Algorithm 4): builds each stage with
/// little cores first, falling back to big cores when the target period
/// cannot be respected otherwise. Algorithm 4's recursion is linear — a
/// stage never has to be revisited once its successor stages are built, and
/// a non-empty suffix is always valid at the target — so this runs it as a
/// left-to-right loop filling `out` in chain order, with no allocation
/// beyond the caller's buffer. Returns `false` (clearing `out`) on failure.
fn compute_solution_into(
    chain: &TaskChain,
    resources: Resources,
    target: Ratio,
    out: &mut Vec<Stage>,
) -> bool {
    out.clear();
    let n = chain.len();
    let mut start = 0;
    let mut left = resources;
    while start < n {
        // Little cores first; big cores only when the little stage is invalid.
        let mut stage = try_stage(chain, start, left, CoreType::Little, target);
        if stage.is_none() {
            stage = try_stage(chain, start, left, CoreType::Big, target);
        }
        let Some(stage) = stage else {
            out.clear();
            return false;
        };
        out.push(stage);
        left = left.minus(stage.core_type, stage.cores);
        start = stage.end + 1;
    }
    true
}

/// Builds one stage with cores of type `v`, returning it only when valid.
fn try_stage(
    chain: &TaskChain,
    start: usize,
    resources: Resources,
    v: CoreType,
    target: Ratio,
) -> Option<Stage> {
    let available = resources.of(v);
    let (end, used) = compute_stage(chain, start, available, v, target);
    stage_fits(chain, start, end, used, available, v, target)
        .then(|| Stage::new(start, end, used, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        // big:    3S 2R 4R 6R 1S
        // little: 6S 4R 8R 12R 2S
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn produces_structurally_valid_schedules() {
        let c = chain();
        for (b, l) in [(1, 0), (0, 1), (2, 2), (4, 4), (1, 7), (7, 1)] {
            let r = Resources::new(b, l);
            let s = Fertac.schedule(&c, r).unwrap();
            assert!(s.validate(&c).is_ok(), "invalid for {r}: {s}");
            let used = s.used_cores();
            assert!(used.big <= b && used.little <= l, "overuse for {r}: {s}");
        }
    }

    #[test]
    fn no_cores_means_no_schedule() {
        assert!(Fertac.schedule(&chain(), Resources::new(0, 0)).is_none());
    }

    #[test]
    fn single_big_core_packs_everything() {
        let c = chain();
        let s = Fertac.schedule(&c, Resources::new(1, 0)).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.period(&c), Ratio::from_int(16));
        assert_eq!(s.stages()[0].core_type, CoreType::Big);
    }

    #[test]
    fn prefers_little_cores_when_they_suffice() {
        // One replicable task with equal weight on both types: at the final
        // period target both types fit, and FERTAC builds with little first.
        let c = TaskChain::new(vec![Task::new(4, 4, true)]);
        let s = Fertac.schedule(&c, Resources::new(2, 2)).unwrap();
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.period(&c), Ratio::from_int(2));
        let used = s.used_cores();
        assert_eq!(
            (used.big, used.little),
            (0, 2),
            "little cores should be used: {s}"
        );
    }

    #[test]
    fn uses_big_cores_for_heavy_sequential_tasks() {
        // A sequential task that only fits the target on a big core.
        let c = TaskChain::new(vec![Task::new(10, 50, false), Task::new(2, 4, true)]);
        let s = Fertac.schedule(&c, Resources::new(1, 1)).unwrap();
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.stages()[0].core_type, CoreType::Big);
        assert_eq!(s.period(&c), Ratio::from_int(10));
    }

    #[test]
    fn respects_replication_limits() {
        // All tasks replicable: the whole chain should collapse into few
        // stages replicated across the cores.
        let c = TaskChain::new(vec![
            Task::new(10, 20, true),
            Task::new(10, 20, true),
            Task::new(10, 20, true),
            Task::new(10, 20, true),
        ]);
        let s = Fertac.schedule(&c, Resources::new(4, 0)).unwrap();
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.period(&c), Ratio::from_int(10));
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.stages()[0].cores, 4);
    }
}
