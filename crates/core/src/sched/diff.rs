//! Dry-run diff between two stage decompositions of one chain.
//!
//! Live reconfiguration (amp-runtime) re-solves a chain when the resource
//! pool or the profiled weights change, then migrates the running pipeline
//! to the new decomposition. Before touching any worker it wants to know
//! *what* actually changes: which stages survive untouched, which keep
//! their task span but change replica count or core type, and which task
//! intervals are cut differently altogether. [`schedule_diff`] computes
//! that plan; the runtime reports it per migration and skips the epoch
//! barrier entirely when the diff is a no-op.

use crate::solution::Stage;

/// How one task span changed between the old and the new decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Same span, same replica count, same core type.
    Unchanged,
    /// Same span, but replica count and/or core type differ.
    Resized,
    /// The span exists only in the old decomposition (its tasks were
    /// re-cut into different stages).
    Removed,
    /// The span exists only in the new decomposition.
    Added,
}

/// One entry of a [`ScheduleDiff`]: a task span `[start, end]` with its
/// old and new stage (either may be absent for re-cut spans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageDelta {
    /// First task of the span.
    pub start: usize,
    /// Last task of the span (inclusive).
    pub end: usize,
    /// The stage covering this span in the old decomposition, if any.
    pub old: Option<Stage>,
    /// The stage covering this span in the new decomposition, if any.
    pub new: Option<Stage>,
    /// The change classification.
    pub kind: DeltaKind,
}

/// The full migration plan between two decompositions of the same chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleDiff {
    /// Every task span of either decomposition, ordered by `start` (ties:
    /// old spans first).
    pub deltas: Vec<StageDelta>,
    /// Spans identical on both sides.
    pub unchanged: usize,
    /// Spans kept but with a different replica count or core type.
    pub resized: usize,
    /// Spans only the old decomposition cuts.
    pub removed: usize,
    /// Spans only the new decomposition cuts.
    pub added: usize,
}

impl ScheduleDiff {
    /// `true` when the decompositions are identical — a migration can be
    /// skipped outright.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.resized == 0 && self.removed == 0 && self.added == 0
    }

    /// Number of stages of the *new* decomposition that need migration
    /// (resized or freshly cut).
    #[must_use]
    pub fn migrated_stages(&self) -> usize {
        self.resized + self.added
    }
}

/// Diffs two stage decompositions of the same chain, keyed by task span.
///
/// Stages whose `[start, end]` span appears on both sides are compared
/// field-wise ([`DeltaKind::Unchanged`] / [`DeltaKind::Resized`]); spans
/// cut by only one side become [`DeltaKind::Removed`] /
/// [`DeltaKind::Added`]. Both inputs are assumed valid decompositions of
/// the same chain, so spans are disjoint and sorted within each side.
#[must_use]
pub fn schedule_diff(old: &[Stage], new: &[Stage]) -> ScheduleDiff {
    let mut diff = ScheduleDiff::default();
    let mut j = 0usize;
    let mut matched_new = vec![false; new.len()];
    for o in old {
        // Advance to the first new stage that could share o's span.
        while j < new.len() && new[j].start < o.start {
            j += 1;
        }
        let partner =
            (j < new.len() && new[j].start == o.start && new[j].end == o.end).then(|| {
                matched_new[j] = true;
                new[j]
            });
        let (kind, new_stage) = match partner {
            Some(n) if n.cores == o.cores && n.core_type == o.core_type => {
                diff.unchanged += 1;
                (DeltaKind::Unchanged, Some(n))
            }
            Some(n) => {
                diff.resized += 1;
                (DeltaKind::Resized, Some(n))
            }
            None => {
                diff.removed += 1;
                (DeltaKind::Removed, None)
            }
        };
        diff.deltas.push(StageDelta {
            start: o.start,
            end: o.end,
            old: Some(*o),
            new: new_stage,
            kind,
        });
    }
    for (n, matched) in new.iter().zip(&matched_new) {
        if !matched {
            diff.added += 1;
            diff.deltas.push(StageDelta {
                start: n.start,
                end: n.end,
                old: None,
                new: Some(*n),
                kind: DeltaKind::Added,
            });
        }
    }
    diff.deltas
        .sort_by_key(|d| (d.start, d.old.is_none(), d.end));
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::CoreType;

    fn s(start: usize, end: usize, cores: u64, v: CoreType) -> Stage {
        Stage::new(start, end, cores, v)
    }

    #[test]
    fn identical_decompositions_are_a_noop() {
        let a = vec![
            s(0, 1, 1, CoreType::Big),
            s(2, 4, 3, CoreType::Little),
            s(5, 5, 1, CoreType::Big),
        ];
        let d = schedule_diff(&a, &a);
        assert!(d.is_noop());
        assert_eq!(d.unchanged, 3);
        assert_eq!(d.migrated_stages(), 0);
        assert!(d.deltas.iter().all(|x| x.kind == DeltaKind::Unchanged));
    }

    #[test]
    fn replica_change_on_same_span_is_resized() {
        let a = vec![s(0, 1, 1, CoreType::Big), s(2, 3, 3, CoreType::Big)];
        let b = vec![s(0, 1, 1, CoreType::Big), s(2, 3, 2, CoreType::Little)];
        let d = schedule_diff(&a, &b);
        assert!(!d.is_noop());
        assert_eq!((d.unchanged, d.resized, d.removed, d.added), (1, 1, 0, 0));
        assert_eq!(d.migrated_stages(), 1);
        let delta = d.deltas.iter().find(|x| x.start == 2).unwrap();
        assert_eq!(delta.kind, DeltaKind::Resized);
        assert_eq!(delta.old.unwrap().cores, 3);
        assert_eq!(delta.new.unwrap().cores, 2);
    }

    #[test]
    fn recut_spans_are_removed_plus_added() {
        // Old cuts [0,2][3,3]; new cuts [0,1][2,3]: nothing matches.
        let a = vec![s(0, 2, 1, CoreType::Big), s(3, 3, 1, CoreType::Big)];
        let b = vec![s(0, 1, 1, CoreType::Big), s(2, 3, 1, CoreType::Big)];
        let d = schedule_diff(&a, &b);
        assert_eq!((d.unchanged, d.resized, d.removed, d.added), (0, 0, 2, 2));
        assert_eq!(d.migrated_stages(), 2);
        assert_eq!(d.deltas.len(), 4);
        // Ordered by start, old-before-new on ties.
        let starts: Vec<usize> = d.deltas.iter().map(|x| x.start).collect();
        assert_eq!(starts, vec![0, 0, 2, 3]);
    }

    #[test]
    fn empty_sides_diff_cleanly() {
        let a = vec![s(0, 0, 1, CoreType::Big)];
        let d = schedule_diff(&a, &[]);
        assert_eq!((d.unchanged, d.resized, d.removed, d.added), (0, 0, 1, 0));
        let d = schedule_diff(&[], &a);
        assert_eq!((d.unchanged, d.resized, d.removed, d.added), (0, 0, 0, 1));
        let d = schedule_diff(&[], &[]);
        assert!(d.is_noop());
    }
}
