//! HeRAD — *Heterogeneous Resource Allocation using Dynamic programming*
//! (Section V, Algorithms 7–11): the optimal solution to the period
//! minimization problem, also optimal for the secondary objective of using
//! as many little cores as necessary.
//!
//! The DP computes `P*(j, b, l)` — the best period for the first `j` tasks
//! on `b` big and `l` little cores — via the recurrence of Eq. (4):
//! try every start `i` for the stage finishing at `τ_j` and every core
//! assignment `u` of either type, combining with the optimal prefix
//! `P*(i-1, ·, ·)`.
//!
//! The naive recurrence costs `O(n² b l (b+l))`, which is prohibitive for
//! the paper's Fig. 3/4 sweeps. [`Pruning`] selects how aggressively
//! provably-useless candidates are skipped; all modes return optimal
//! *periods* (property-tested against each other and against exhaustive
//! search), see each variant for the tie-breaking guarantee.
//!
//! ## One cell function, four drivers
//!
//! Every way the table is filled — the sequential rebuild, the
//! layer-parallel rebuild, and the incremental pool-delta grow — funnels
//! through the same pure [`cell_value`] function, which computes the final
//! value of cell `(j, rb, rl)` from the chain and a read-only view of
//! already-final cells. Bit-identical results across drivers are therefore
//! structural, not incidental: the drivers only differ in the *order* cells
//! are produced, and that order always respects the recurrence's
//! dependencies (left neighbour, down neighbour, all earlier layers).
//!
//! ## Pool independence (the sub-table-growth invariant)
//!
//! The recurrence for cell `(j, rb, rl)` never mentions the total pool
//! `(B, L)` — only the cell's own indices bound the candidate loops and
//! neighbour reads. The value of `(j, rb, rl)` is therefore a pure function
//! of the chain prefix and the indices, identical in every table that
//! contains the cell: the `(b, ℓ)` table is a strict sub-table of any
//! `(b', ℓ')` table with `b' ≥ b, ℓ' ≥ ℓ`. [`Table::grow`] exploits this to
//! extend a solved table with only the new rows/columns, and extraction at
//! any covered pool walks only cells with indices `≤ (b, ℓ)` — so a grown
//! table answers every smaller pool bit-identically to a fresh solve.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{Solution, Stage};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, OnceLock};

/// Candidate-skipping policy for HeRAD's inner loops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pruning {
    /// No pruning beyond the paper's own "sequential stages use one core"
    /// optimization. Reference implementation for tests.
    None,
    /// Skips only candidates that are provably *strictly worse in period*
    /// than the best already found for the cell: identical results to
    /// [`Pruning::None`], bit for bit (period and tie-breaking).
    Lossless,
    /// Additionally stops raising the replication count once the stage
    /// weight drops to (or below) the prefix period: every further
    /// candidate ties or worsens the period while using more cores, so the
    /// period stays optimal; in rare ties a different (never larger-period)
    /// core mix may be preferred. Default: orders of magnitude faster on
    /// large core counts.
    #[default]
    Aggressive,
}

/// Cell-count threshold below which the parallel kernel never engages in
/// auto mode: a table this small solves in tens of microseconds, under the
/// cost of spawning scoped workers and crossing per-layer barriers.
const PAR_MIN_CELLS: usize = 1 << 15;

/// `std::thread::available_parallelism`, resolved once per process —
/// [`Herad::new`] is constructed on hot paths (per request in the
/// service), so the syscall must not repeat.
fn machine_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// The HeRAD scheduler.
#[derive(Clone, Copy, Debug)]
pub struct Herad {
    pruning: Pruning,
    /// Worker cap for the layer-parallel kernel; `0` = auto (machine
    /// parallelism). Always clamped to the table's row count at run time.
    workers: usize,
    /// Minimum table size (in cells) before the parallel kernel engages.
    min_cells: usize,
}

impl Default for Herad {
    fn default() -> Self {
        Herad {
            pruning: Pruning::default(),
            workers: 0,
            min_cells: PAR_MIN_CELLS,
        }
    }
}

impl Herad {
    /// HeRAD with the default (aggressive, period-optimal) pruning and
    /// automatic kernel selection: sequential for small tables, the
    /// layer-parallel kernel (bit-identical, see module docs) above
    /// a cell-count threshold when the machine has more than one core.
    #[must_use]
    pub fn new() -> Self {
        Herad::default()
    }

    /// HeRAD with an explicit pruning policy (automatic kernel selection).
    #[must_use]
    pub fn with_pruning(pruning: Pruning) -> Self {
        Herad {
            pruning,
            ..Herad::default()
        }
    }

    /// HeRAD that always runs the layer-parallel kernel with up to
    /// `workers` scoped threads, regardless of table size (`workers` is
    /// still clamped to the table's `B + 1` rows; `1` forces the
    /// sequential kernel). Results are bit-identical to sequential — this
    /// constructor exists for differential tests and benchmarks.
    #[must_use]
    pub fn with_parallelism(workers: usize) -> Self {
        Herad::with_pruning_and_parallelism(Pruning::default(), workers)
    }

    /// [`Herad::with_parallelism`] with an explicit pruning policy.
    #[must_use]
    pub fn with_pruning_and_parallelism(pruning: Pruning, workers: usize) -> Self {
        Herad {
            pruning,
            workers: workers.max(1),
            min_cells: 0,
        }
    }

    /// How many workers the kernel should use for a table of `cells`.
    fn kernel_workers(&self, cells: usize) -> usize {
        if cells < self.min_cells {
            return 1;
        }
        if self.workers == 0 {
            machine_parallelism()
        } else {
            self.workers
        }
    }

    /// The optimal period for the chain on these resources, without
    /// extracting the schedule.
    #[must_use]
    pub fn optimal_period(&self, chain: &TaskChain, resources: Resources) -> Option<Ratio> {
        let mut scratch = SchedScratch::new();
        self.optimal_period_with(chain, resources, &mut scratch)
    }

    /// [`Herad::optimal_period`] reusing the caller's scratch
    /// (allocation-free once the DP table has warmed up, and
    /// extraction-free when the sweep memo already covers the pool).
    #[must_use]
    pub fn optimal_period_with(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
    ) -> Option<Ratio> {
        if resources.is_exhausted() {
            return None;
        }
        let p = self
            .sweep_table(chain, resources, scratch)
            .period_at(resources);
        p.is_finite().then_some(p)
    }

    /// Returns the scratch's sweep table, solved for (at least) this
    /// chain + pool: a covering table is reused as-is (extraction-only
    /// solve), a smaller same-chain table grows by the pool delta, and
    /// anything else is rebuilt from scratch at exactly the requested
    /// dimensions. The `valid` flag is dropped while the table is being
    /// mutated so a panicking solve can never leave a half-written table
    /// behind a matching key.
    fn sweep_table<'s>(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &'s mut SchedScratch,
    ) -> &'s Table {
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        let sweep = &mut scratch.herad_sweep;
        if sweep.matches(self.pruning, chain) {
            if !sweep.table.covers(chain.len(), b, l) {
                let grown_b = b.max(sweep.table.dim_b());
                let grown_l = l.max(sweep.table.dim_l());
                sweep.valid = false;
                sweep.table.grow(chain, grown_b, grown_l, self.pruning);
                sweep.valid = true;
            }
        } else {
            let cells = chain.len() * (b + 1) * (l + 1);
            sweep.valid = false;
            sweep
                .table
                .rebuild(chain, b, l, self.pruning, self.kernel_workers(cells));
            sweep.rekey(self.pruning, chain);
        }
        &sweep.table
    }
}

impl Scheduler for Herad {
    fn name(&self) -> &'static str {
        "HeRAD"
    }

    /// Consults the scratch's replay memo first: when the instance is
    /// bit-identical to the previous solve (same weights, replicability,
    /// pool and pruning), the stored solution is replayed verbatim —
    /// the DP is deterministic, so the replay *is* the recomputation.
    /// Otherwise the sweep memo is consulted: a table already covering
    /// this chain + pool answers by extraction alone, a same-chain table
    /// grows by the pool delta, and only a genuinely new chain (or
    /// pruning) pays for a full rebuild — which then refreshes both memos.
    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        out.stages_mut().clear();
        if resources.is_exhausted() {
            return false;
        }
        if let Some(memo) = &scratch.herad_memo {
            if memo.matches(self.pruning, chain, resources) {
                out.stages_mut().extend_from_slice(&memo.stages);
                return memo.feasible;
            }
        }
        let feasible = self.sweep_table(chain, resources, scratch).extract_into(
            chain,
            resources,
            out.stages_mut(),
        );
        if feasible {
            out.merge_replicable_stages_in_place(chain);
        }
        let memo = scratch
            .herad_memo
            .get_or_insert_with(crate::sched::scratch::HeradMemo::empty);
        memo.pruning = self.pruning;
        memo.resources = resources;
        memo.feasible = feasible;
        memo.tasks.clear();
        memo.tasks.extend(
            chain
                .tasks()
                .iter()
                .map(|t| (t.weight_big, t.weight_little, t.replicable)),
        );
        memo.stages.clear();
        memo.stages.extend_from_slice(out.stages());
        feasible
    }
}

/// One cell of the solution matrix `S[j][b][l]` (Algorithm 7, lines 1–7).
/// `pub(crate)` so [`SchedScratch`] can park the table between runs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cell {
    /// `S_Pbest`: minimal maximum period.
    pbest: Ratio,
    /// `S_prev`: big and little cores available to the previous stages.
    prev_b: u32,
    prev_l: u32,
    /// `S_acc`: accumulated big and little cores used by the solution.
    acc_b: u32,
    acc_l: u32,
    /// `S_v`: type of core used in the last stage.
    v: CoreType,
    /// `S_start`: 0-based index of the first task of the last stage.
    start: u32,
}

const EMPTY_CELL: Cell = Cell {
    pbest: Ratio::INFINITY,
    prev_b: 0,
    prev_l: 0,
    acc_b: 0,
    acc_l: 0,
    v: CoreType::Little,
    start: 0,
};

/// The virtual row 0 (`P*(0, ·, ·) = 0`): an empty prefix using no cores.
const ZERO_CELL: Cell = Cell {
    pbest: Ratio::ZERO,
    prev_b: 0,
    prev_l: 0,
    acc_b: 0,
    acc_l: 0,
    v: CoreType::Little,
    start: 0,
};

/// `CompareCells` (Algorithm 10): whether the new cell `n` should replace
/// the current cell `c` — strictly better period, or an equal period with a
/// better big→little exchange, or an equal period using no more cores of
/// either type.
fn replaces(c: &Cell, n: &Cell) -> bool {
    if n.pbest < c.pbest {
        return true;
    }
    if n.pbest > c.pbest {
        return false;
    }
    (c.acc_l < n.acc_l && c.acc_b > n.acc_b) || (c.acc_l >= n.acc_l && c.acc_b >= n.acc_b)
}

fn compare_cells(c: Cell, n: Cell) -> Cell {
    if replaces(&c, &n) {
        n
    } else {
        c
    }
}

/// Stage weight without gcd normalization (hot path).
#[inline]
fn stage_weight(
    chain: &TaskChain,
    start: usize,
    end: usize,
    rep: bool,
    u: u64,
    v: CoreType,
) -> Ratio {
    let sum = u128::from(chain.interval_sum(start, end, v));
    if rep {
        Ratio::new_raw(sum, u128::from(u))
    } else {
        Ratio::new_raw(sum, 1)
    }
}

/// `SingleStageSolution` (Algorithm 8) for one cell: the best placement of
/// all `t` first tasks in a single stage on `rb` big xor `rl` little cores.
/// A pure function of the chain and indices (cheap: two O(1) prefix-sum
/// weights), so every driver recomputes it instead of staging seeds in the
/// table — `(t, 0, 0)` is the infeasible [`EMPTY_CELL`], ties go to the
/// little cores (strict `<`, Algorithm 8 line 9).
#[inline]
fn seed_cell(chain: &TaskChain, t: usize, rb: usize, rl: usize) -> Cell {
    let rep = chain.is_replicable(0, t - 1);
    let little = if rl == 0 {
        EMPTY_CELL
    } else {
        Cell {
            pbest: stage_weight(chain, 0, t - 1, rep, rl as u64, CoreType::Little),
            prev_b: 0,
            prev_l: 0,
            acc_b: 0,
            acc_l: if rep { rl as u32 } else { 1 },
            v: CoreType::Little,
            start: 0,
        }
    };
    if rb == 0 {
        return little;
    }
    let wb = stage_weight(chain, 0, t - 1, rep, rb as u64, CoreType::Big);
    if wb < little.pbest {
        Cell {
            pbest: wb,
            prev_b: 0,
            prev_l: 0,
            acc_b: if rep { rb as u32 } else { 1 },
            acc_l: 0,
            v: CoreType::Big,
            start: 0,
        }
    } else {
        little
    }
}

/// `RecomputeCell` (Algorithm 9): computes `P*(j, b_av, l_av)` from the
/// single-stage seed, the two fewer-core neighbour cells, and every
/// (start, core-count, core-type) split of the last stage. `get` is the
/// driver's read-only view of already-final cells; it must return
/// [`ZERO_CELL`] for `j == 0` and is only consulted at indices the
/// recurrence depends on: `(j, b_av, l_av - 1)`, `(j, b_av - 1, l_av)` and
/// prefixes `(i - 1, pb ≤ b_av, pl ≤ l_av)` in earlier layers.
#[inline]
fn compute_cell<G>(
    chain: &TaskChain,
    j: usize,
    b_av: usize,
    l_av: usize,
    pruning: Pruning,
    get: G,
) -> Cell
where
    G: Fn(usize, usize, usize) -> Cell,
{
    let mut c = seed_cell(chain, j, b_av, l_av);
    // Propagate solutions that simply leave one core unused.
    if l_av > 0 {
        c = compare_cells(c, get(j, b_av, l_av - 1));
    }
    if b_av > 0 {
        c = compare_cells(c, get(j, b_av - 1, l_av));
    }
    for i in (1..=j).rev() {
        // 1-based stage [τ_i, τ_j] = 0-based tasks [i-1, j-1].
        let (s, e) = (i - 1, j - 1);
        let rep = chain.is_replicable(s, e);
        if pruning != Pruning::None && c.pbest.is_finite() {
            // Even with every available core, this stage (and any longer
            // one: weights grow as i decreases) exceeds the best found.
            let mut min_w = Ratio::INFINITY;
            if b_av > 0 {
                let u = if rep { b_av as u64 } else { 1 };
                min_w = min_w.min(stage_weight(chain, s, e, rep, u, CoreType::Big));
            }
            if l_av > 0 {
                let u = if rep { l_av as u64 } else { 1 };
                min_w = min_w.min(stage_weight(chain, s, e, rep, u, CoreType::Little));
            }
            if min_w > c.pbest {
                break;
            }
        }
        for v in CoreType::BOTH {
            let avail = match v {
                CoreType::Big => b_av,
                CoreType::Little => l_av,
            };
            // The paper's optimization: a sequential stage cannot use
            // more than one core.
            let u_max = if rep { avail } else { avail.min(1) };
            for u in 1..=u_max {
                let (pb, pl) = match v {
                    CoreType::Big => (b_av - u, l_av),
                    CoreType::Little => (b_av, l_av - u),
                };
                let prefix = get(i - 1, pb, pl);
                if pruning != Pruning::None && prefix.pbest > c.pbest {
                    // Prefixes only get worse as this stage takes more
                    // cores; every remaining candidate is strictly worse.
                    break;
                }
                let w = stage_weight(chain, s, e, rep, u as u64, v);
                let used = if rep { u as u32 } else { 1 };
                let cand = Cell {
                    pbest: prefix.pbest.max(w),
                    prev_b: pb as u32,
                    prev_l: pl as u32,
                    acc_b: prefix.acc_b + if v == CoreType::Big { used } else { 0 },
                    acc_l: prefix.acc_l + if v == CoreType::Little { used } else { 0 },
                    v,
                    start: s as u32,
                };
                c = compare_cells(c, cand);
                if pruning == Pruning::Aggressive && w <= prefix.pbest {
                    // Crossing rule: more cores cannot lower the period
                    // below the prefix period.
                    break;
                }
            }
        }
    }
    c
}

/// The final value of cell `(j, rb, rl)` — the single source of truth for
/// every table driver. Layer 1 is pure seeds (no prefix exists), `(j, 0, 0)`
/// is infeasible, and everything else goes through the full recurrence.
#[inline]
fn cell_value<G>(
    chain: &TaskChain,
    j: usize,
    rb: usize,
    rl: usize,
    pruning: Pruning,
    get: G,
) -> Cell
where
    G: Fn(usize, usize, usize) -> Cell,
{
    if j == 1 {
        return seed_cell(chain, 1, rb, rl);
    }
    if rb == 0 && rl == 0 {
        return EMPTY_CELL;
    }
    compute_cell(chain, j, rb, rl, pruning, get)
}

/// Reads `S[j][rb][rl]` from a raw cell slice laid out for dimensions
/// `(b, l)`, with the virtual zero row for `j == 0`.
#[inline]
fn read_cell(cells: &[Cell], b: usize, l: usize, j: usize, rb: usize, rl: usize) -> Cell {
    if j == 0 {
        ZERO_CELL
    } else {
        cells[((j - 1) * (b + 1) + rb) * (l + 1) + rl]
    }
}

/// A raw view of the cell table shared by the layer-parallel workers.
struct SharedCells {
    ptr: *mut Cell,
}

// SAFETY: workers write disjoint rows — each `(layer, row)` pair is
// claimed by exactly one worker through the layer's atomic cursor — and
// only read cells published by a happens-before edge: cells of the
// worker's own row (same thread), cells of the row below up to the column
// covered by an acquire load of its progress counter (paired with the
// writer's release store), and cells of earlier layers (separated by the
// layer barrier). `Cell` is `Copy`, so reads never race with drops.
unsafe impl Send for SharedCells {}
unsafe impl Sync for SharedCells {}

/// The DP solution table `S[j][b][l]` with its logical dimensions.
/// The backing vector only grows; every rebuild overwrites the full
/// logical region (all `n·(b+1)·(l+1)` cells, including the infeasible
/// `(j, 0, 0)` column), so stale cells from an earlier, differently-shaped
/// run are never observed — reads stay inside the logical region by
/// construction.
#[derive(Debug, Default)]
pub(crate) struct Table {
    cells: Vec<Cell>,
    n: usize,
    b: usize,
    l: usize,
}

impl Table {
    pub(crate) fn dim_b(&self) -> usize {
        self.b
    }

    pub(crate) fn dim_l(&self) -> usize {
        self.l
    }

    /// Whether the solved region contains the `(n, b, l)` sub-table.
    pub(crate) fn covers(&self, n: usize, b: usize, l: usize) -> bool {
        self.n == n && b <= self.b && l <= self.l
    }

    #[inline]
    fn get(&self, j: usize, rb: usize, rl: usize) -> Cell {
        read_cell(&self.cells, self.b, self.l, j, rb, rl)
    }

    /// `P*(n, B, L)` for a covered pool.
    pub(crate) fn period_at(&self, resources: Resources) -> Ratio {
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        self.get(self.n, b, l).pbest
    }

    /// Solves the full table at exactly `(chain.len(), b, l)`, sequentially
    /// or with the layer-parallel kernel when `workers > 1` (clamped to the
    /// `b + 1` rows of a layer — fewer rows than workers just idles the
    /// surplus at the barrier, so they are not spawned at all).
    pub(crate) fn rebuild(
        &mut self,
        chain: &TaskChain,
        b: usize,
        l: usize,
        pruning: Pruning,
        workers: usize,
    ) {
        let n = chain.len();
        let len = n * (b + 1) * (l + 1);
        if self.cells.len() < len {
            self.cells.resize(len, EMPTY_CELL);
        }
        self.n = n;
        self.b = b;
        self.l = l;
        let workers = workers.min(b + 1).max(1);
        if workers > 1 {
            self.run_parallel(chain, pruning, workers);
        } else {
            self.run_sequential(chain, pruning);
        }
    }

    /// The classic driver: layers ascending, rows ascending, columns
    /// ascending — each cell's left/down neighbours and all earlier layers
    /// are final when [`cell_value`] reads them.
    fn run_sequential(&mut self, chain: &TaskChain, pruning: Pruning) {
        let (n, b, l) = (self.n, self.b, self.l);
        for j in 1..=n {
            for rb in 0..=b {
                for rl in 0..=l {
                    let cell = cell_value(chain, j, rb, rl, pruning, |jj, pb, pl| {
                        read_cell(&self.cells, b, l, jj, pb, pl)
                    });
                    let i = ((j - 1) * (b + 1) + rb) * (l + 1) + rl;
                    self.cells[i] = cell;
                }
            }
        }
    }

    /// The layer-parallel kernel: within a layer, workers claim whole
    /// `(rb, ·)` rows from an atomic cursor and pipeline down the columns —
    /// a row waits (acquire) for the row below to pass each column before
    /// computing its own cell, forming a diagonal wavefront that respects
    /// the intra-layer left/down dependencies exactly. A barrier separates
    /// layers, because cells read prefixes from *every* earlier layer.
    /// Cell values and tie-breaks are bit-identical to the sequential
    /// driver: both produce each cell with the same [`cell_value`] call on
    /// the same already-final inputs.
    fn run_parallel(&mut self, chain: &TaskChain, pruning: Pruning, workers: usize) {
        let (n, b, l) = (self.n, self.b, self.l);
        let rows = b + 1;
        // Per-layer row cursor and per-row progress (columns finished);
        // allocated zeroed per run so layers never need a reset phase.
        let cursors: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let progress: Vec<AtomicUsize> = (0..n * rows).map(|_| AtomicUsize::new(0)).collect();
        let barrier = Barrier::new(workers);
        let shared = SharedCells {
            ptr: self.cells.as_mut_ptr(),
        };
        let idx = move |j: usize, rb: usize, rl: usize| ((j - 1) * rows + rb) * (l + 1) + rl;
        let work = || {
            let shared = &shared;
            // SAFETY: reads follow the synchronization protocol documented
            // on `SharedCells`; the indices passed by `cell_value` are
            // exactly the recurrence's dependencies, all published before
            // the wait below lets this cell proceed.
            let get = move |jj: usize, pb: usize, pl: usize| -> Cell {
                if jj == 0 {
                    ZERO_CELL
                } else {
                    unsafe { shared.ptr.add(idx(jj, pb, pl)).read() }
                }
            };
            for j in 1..=n {
                loop {
                    let rb = cursors[j - 1].fetch_add(1, Ordering::Relaxed);
                    if rb >= rows {
                        break;
                    }
                    let mine = &progress[(j - 1) * rows + rb];
                    for rl in 0..=l {
                        if j > 1 && rb > 0 {
                            // Wait for the row below to finalize column rl.
                            let below = &progress[(j - 1) * rows + rb - 1];
                            let mut spins = 0u32;
                            while below.load(Ordering::Acquire) <= rl {
                                spins = spins.wrapping_add(1);
                                if spins.is_multiple_of(64) {
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        let cell = cell_value(chain, j, rb, rl, pruning, get);
                        // SAFETY: this worker claimed row `(j, rb)`; nobody
                        // else writes it, and readers only look below the
                        // released progress mark.
                        unsafe { shared.ptr.add(idx(j, rb, rl)).write(cell) };
                        mine.store(rl + 1, Ordering::Release);
                    }
                }
                // Layers j+1.. read prefixes from every cell of layer j.
                barrier.wait();
            }
        };
        crossbeam::thread::scope(|scope| {
            let work = &work;
            for _ in 1..workers {
                scope.spawn(work);
            }
            work();
        })
        .expect("herad layer-parallel scope");
    }

    /// Pool-delta warm start: extends a solved `(n, b0, l0)` table to
    /// `(n, b, l)` with `b ≥ b0, l ≥ l0`, relaying out the existing rows
    /// and computing only the new cells (`rb > b0` or `rl > l0`). Sound
    /// because cell values are pool-independent (module docs): the old
    /// cells are bit-identical to what a fresh `(b, l)` solve would put at
    /// the same indices, and the delta traversal (layers ascending, rows
    /// ascending, columns ascending within the new region) only reads
    /// final cells.
    pub(crate) fn grow(&mut self, chain: &TaskChain, b: usize, l: usize, pruning: Pruning) {
        let (b0, l0) = (self.b, self.l);
        debug_assert!(b >= b0 && l >= l0, "grow never shrinks");
        debug_assert_eq!(self.n, chain.len(), "grow keeps the chain");
        let n = self.n;
        let len = n * (b + 1) * (l + 1);
        if self.cells.len() < len {
            self.cells.resize(len, EMPTY_CELL);
        }
        // Relayout back to front: destinations are monotonically >= their
        // sources, so processing rows in decreasing (j, rb) order never
        // overwrites a row that has not moved yet.
        for j in (1..=n).rev() {
            for rb in (0..=b0).rev() {
                let src = ((j - 1) * (b0 + 1) + rb) * (l0 + 1);
                let dst = ((j - 1) * (b + 1) + rb) * (l + 1);
                if src != dst {
                    self.cells.copy_within(src..=src + l0, dst);
                }
            }
        }
        self.b = b;
        self.l = l;
        for j in 1..=n {
            for rb in 0..=b {
                let first_new = if rb > b0 { 0 } else { l0 + 1 };
                for rl in first_new..=l {
                    let cell = cell_value(chain, j, rb, rl, pruning, |jj, pb, pl| {
                        read_cell(&self.cells, b, l, jj, pb, pl)
                    });
                    let i = ((j - 1) * (b + 1) + rb) * (l + 1) + rl;
                    self.cells[i] = cell;
                }
            }
        }
    }

    /// `ExtractSolution` (Algorithm 11): walks the matrix backwards from
    /// `S[n][B][L]`, reconstructing each stage's interval, core type and
    /// core count (from the difference of accumulated usages) into the
    /// caller's buffer. The pool may be any the table covers — the walk
    /// only visits cells with indices `≤ (B, L)`. Returns `false` (buffer
    /// left empty) when the instance is infeasible.
    pub(crate) fn extract_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        stages: &mut Vec<Stage>,
    ) -> bool {
        stages.clear();
        let n = chain.len();
        let mut rb = usize::try_from(resources.big).expect("core count fits usize");
        let mut rl = usize::try_from(resources.little).expect("core count fits usize");
        let final_cell = self.get(n, rb, rl);
        if final_cell.pbest.is_infinite() {
            return false;
        }
        let mut e = n;
        while e >= 1 {
            let cell = self.get(e, rb, rl);
            debug_assert!(cell.pbest.is_finite());
            let start = cell.start as usize;
            let (mut ub, mut ul) = (cell.acc_b, cell.acc_l);
            let (pb, pl) = (cell.prev_b as usize, cell.prev_l as usize);
            if start > 0 {
                let prefix = self.get(start, pb, pl);
                ub -= prefix.acc_b;
                ul -= prefix.acc_l;
            }
            let r = match cell.v {
                CoreType::Big => ub,
                CoreType::Little => ul,
            };
            debug_assert!(r >= 1, "stage with zero cores during extraction");
            stages.push(Stage::new(start, e - 1, u64::from(r), cell.v));
            e = start;
            rb = pb;
            rl = pl;
        }
        stages.reverse();
        true
    }
}

/// Decoding a serialized [`ChainTable`] failed. Every variant is a clean
/// rejection: callers treat the table as absent (a cache miss), never as
/// a half-loaded answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainTableError {
    /// The input is not canonical JSON.
    Parse {
        /// Byte offset into the input where parsing failed.
        offset: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The document parses but carries an unknown `kind`/`version`/
    /// `pruning` header — written by a different (possibly future) build.
    Version {
        /// The offending header value, e.g. `"version 2"`.
        found: String,
    },
    /// The document parses and the header matches, but the payload is
    /// inconsistent: wrong cell count, unparseable cell, checksum
    /// mismatch, empty chain.
    Malformed {
        /// What was inconsistent.
        message: String,
    },
}

impl std::fmt::Display for ChainTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainTableError::Parse { offset, message } => {
                write!(f, "chain table parse error at byte {offset}: {message}")
            }
            ChainTableError::Version { found } => {
                write!(f, "chain table version mismatch: {found}")
            }
            ChainTableError::Malformed { message } => {
                write!(f, "chain table malformed: {message}")
            }
        }
    }
}

impl std::error::Error for ChainTableError {}

/// Header constants for the serialized form. Bump `FORMAT_VERSION` on any
/// incompatible layout change; old snapshots then load as clean misses.
const CHAIN_TABLE_KIND: &str = "amp-chain-table";
const CHAIN_TABLE_VERSION: u64 = 1;

/// FNV-1a over a byte slice, continuing from `h` (offset basis
/// `0xcbf2_9ce4_8422_2325`).
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// A solved HeRAD DP table detached from any scratch, keyed by the chain
/// alone: the service's solve-once cache tier stores one per distinct
/// `(weights, replicability)` vector and answers every covered sub-pool by
/// pure extraction (see the module docs on pool independence). Grows in
/// place via the pool-delta driver when a larger pool arrives, and
/// round-trips through canonical JSON ([`ChainTable::to_json`] /
/// [`ChainTable::from_json`]) for snapshot persistence.
///
/// Always solved with [`Pruning::Aggressive`] — the same policy
/// [`Herad::new`] uses — so extraction is bit-identical to the service's
/// cold HeRAD path.
#[derive(Debug)]
pub struct ChainTable {
    /// The chain key: `(weight_big, weight_little, replicable)` per task.
    tasks: Vec<(u64, u64, bool)>,
    table: Table,
}

impl ChainTable {
    /// Solves the chain cold at exactly `resources`, using the same kernel
    /// selection as [`Herad::new`] (sequential below the cell threshold,
    /// layer-parallel above it).
    #[must_use]
    pub fn solve(chain: &TaskChain, resources: Resources) -> ChainTable {
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        let herad = Herad::new();
        let cells = chain.len() * (b + 1) * (l + 1);
        let mut table = Table::default();
        table.rebuild(
            chain,
            b,
            l,
            Pruning::Aggressive,
            herad.kernel_workers(cells),
        );
        ChainTable {
            tasks: chain
                .tasks()
                .iter()
                .map(|t| (t.weight_big, t.weight_little, t.replicable))
                .collect(),
            table,
        }
    }

    /// Whether this table was solved for exactly this chain (weights and
    /// replicability; names are ignored, as in scheduling itself).
    #[must_use]
    pub fn matches(&self, chain: &TaskChain) -> bool {
        self.tasks.len() == chain.len()
            && self
                .tasks
                .iter()
                .zip(chain.tasks())
                .all(|(&(wb, wl, rep), t)| {
                    wb == t.weight_big && wl == t.weight_little && rep == t.replicable
                })
    }

    /// Whether the solved region already contains this pool (extraction
    /// needs no growth).
    #[must_use]
    pub fn covers(&self, resources: Resources) -> bool {
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        self.table.covers(self.tasks.len(), b, l)
    }

    /// Extends the solved region to cover `resources` via the pool-delta
    /// driver (dimensions only grow, never shrink). The caller must pass
    /// the same chain the table was solved for.
    pub fn grow_to(&mut self, chain: &TaskChain, resources: Resources) {
        debug_assert!(self.matches(chain), "grow_to keeps the chain");
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        let grown_b = b.max(self.table.dim_b());
        let grown_l = l.max(self.table.dim_l());
        self.table
            .grow(chain, grown_b, grown_l, Pruning::Aggressive);
    }

    /// Extracts the schedule for any covered sub-pool into `out`,
    /// bit-identical to a fresh [`Herad::new`] solve at that pool
    /// (extraction walk + replicable-stage merge). Returns `false` with an
    /// empty solution when the pool is exhausted or the instance is
    /// infeasible on it.
    pub fn extract(&self, chain: &TaskChain, resources: Resources, out: &mut Solution) -> bool {
        debug_assert!(self.matches(chain), "extract keeps the chain");
        debug_assert!(self.covers(resources), "extract needs a covered pool");
        out.stages_mut().clear();
        if resources.is_exhausted() {
            return false;
        }
        let feasible = self.table.extract_into(chain, resources, out.stages_mut());
        if feasible {
            out.merge_replicable_stages_in_place(chain);
        }
        feasible
    }

    /// `P*(n, B, L)` for a covered pool; `None` when infeasible there.
    #[must_use]
    pub fn period_at(&self, resources: Resources) -> Option<Ratio> {
        debug_assert!(self.covers(resources), "period_at needs a covered pool");
        if resources.is_exhausted() {
            return None;
        }
        let p = self.table.period_at(resources);
        p.is_finite().then_some(p)
    }

    /// The solved dimensions `(dim_b, dim_l)` — every pool with
    /// `big ≤ dim_b` and `little ≤ dim_l` is covered.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.table.dim_b(), self.table.dim_l())
    }

    /// The chain key this table answers for, as
    /// `(weight_big, weight_little, replicable)` per task.
    #[must_use]
    pub fn tasks(&self) -> &[(u64, u64, bool)] {
        &self.tasks
    }

    /// Approximate heap footprint of the logical cell region, for cache
    /// accounting.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.tasks.len() * (self.table.dim_b() + 1) * (self.table.dim_l() + 1)
    }

    /// One task as its canonical string form `"wb,wl,0|1"`.
    fn encode_task(wb: u64, wl: u64, rep: bool) -> String {
        format!("{wb},{wl},{}", u8::from(rep))
    }

    /// One cell as its canonical string form
    /// `"pbest,prev_b,prev_l,acc_b,acc_l,v,start"`, with `pbest` an exact
    /// `num/den` rational (or `inf`) and `v` one of `B`/`L`. Strings keep
    /// the codec float-free and carry the `u128` rational exactly.
    fn encode_cell(cell: &Cell) -> String {
        let pbest = if cell.pbest.is_infinite() {
            "inf".to_string()
        } else {
            format!("{}/{}", cell.pbest.numer(), cell.pbest.denom())
        };
        let v = match cell.v {
            CoreType::Big => 'B',
            CoreType::Little => 'L',
        };
        format!(
            "{pbest},{},{},{},{},{v},{}",
            cell.prev_b, cell.prev_l, cell.acc_b, cell.acc_l, cell.start
        )
    }

    fn decode_cell(text: &str) -> Result<Cell, ChainTableError> {
        let malformed = |msg: &str| ChainTableError::Malformed {
            message: format!("{msg} in cell {text:?}"),
        };
        let mut parts = text.split(',');
        let mut next = |what: &'static str| {
            parts
                .next()
                .ok_or_else(|| malformed(&format!("missing {what}")))
        };
        let pbest_text = next("pbest")?;
        let pbest = if pbest_text == "inf" {
            Ratio::INFINITY
        } else {
            let (num, den) = pbest_text
                .split_once('/')
                .ok_or_else(|| malformed("pbest is not num/den"))?;
            let num: u128 = num.parse().map_err(|_| malformed("bad numerator"))?;
            let den: u128 = den.parse().map_err(|_| malformed("bad denominator"))?;
            if den == 0 {
                return Err(malformed("zero denominator"));
            }
            Ratio::new_raw(num, den)
        };
        let parse_u32 = |text: &str| -> Result<u32, ChainTableError> {
            text.parse().map_err(|_| malformed("bad counter"))
        };
        let prev_b = parse_u32(next("prev_b")?)?;
        let prev_l = parse_u32(next("prev_l")?)?;
        let acc_b = parse_u32(next("acc_b")?)?;
        let acc_l = parse_u32(next("acc_l")?)?;
        let v = match next("core type")? {
            "B" => CoreType::Big,
            "L" => CoreType::Little,
            _ => return Err(malformed("bad core type")),
        };
        let start = parse_u32(next("start")?)?;
        if parts.next().is_some() {
            return Err(malformed("trailing fields"));
        }
        Ok(Cell {
            pbest,
            prev_b,
            prev_l,
            acc_b,
            acc_l,
            v,
            start,
        })
    }

    /// Content checksum over the canonical task and cell strings plus the
    /// dimensions — catches payloads that parse but were corrupted.
    fn checksum(tasks: &[String], dim_b: usize, dim_l: usize, cells: &[String]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv1a(&mut h, &(tasks.len() as u64).to_le_bytes());
        fnv1a(&mut h, &(dim_b as u64).to_le_bytes());
        fnv1a(&mut h, &(dim_l as u64).to_le_bytes());
        for t in tasks {
            fnv1a(&mut h, t.as_bytes());
            fnv1a(&mut h, b";");
        }
        for c in cells {
            fnv1a(&mut h, c.as_bytes());
            fnv1a(&mut h, b";");
        }
        h
    }

    /// Serializes the full solved region as a canonical-JSON document with
    /// a versioned header and a content checksum. Floats never appear: the
    /// exact rationals travel as `num/den` strings.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let (b, l) = (self.table.dim_b(), self.table.dim_l());
        let n = self.tasks.len();
        let tasks: Vec<String> = self
            .tasks
            .iter()
            .map(|&(wb, wl, rep)| Self::encode_task(wb, wl, rep))
            .collect();
        let mut cells = Vec::with_capacity(n * (b + 1) * (l + 1));
        for j in 1..=n {
            for rb in 0..=b {
                for rl in 0..=l {
                    cells.push(Self::encode_cell(&self.table.get(j, rb, rl)));
                }
            }
        }
        let checksum = Self::checksum(&tasks, b, l, &cells);
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("kind".to_string(), Json::Str(CHAIN_TABLE_KIND.to_string()));
        obj.insert("version".to_string(), Json::Int(CHAIN_TABLE_VERSION));
        obj.insert("pruning".to_string(), Json::Str("aggressive".to_string()));
        obj.insert("dim_b".to_string(), Json::Int(b as u64));
        obj.insert("dim_l".to_string(), Json::Int(l as u64));
        obj.insert(
            "tasks".to_string(),
            Json::Arr(tasks.into_iter().map(Json::Str).collect()),
        );
        obj.insert(
            "cells".to_string(),
            Json::Arr(cells.into_iter().map(Json::Str).collect()),
        );
        obj.insert("checksum".to_string(), Json::Int(checksum));
        Json::Obj(obj)
    }

    /// Decodes a document produced by [`ChainTable::to_json`], validating
    /// the header, the payload shape and the content checksum. Any
    /// inconsistency is a typed [`ChainTableError`]; a decoded table is
    /// fully usable (extraction, growth, re-serialization).
    pub fn from_json(doc: &crate::json::Json) -> Result<ChainTable, ChainTableError> {
        let malformed = |message: &str| ChainTableError::Malformed {
            message: message.to_string(),
        };
        let obj = doc
            .as_obj()
            .ok_or_else(|| malformed("document is not an object"))?;
        let kind = obj
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| malformed("missing kind"))?;
        if kind != CHAIN_TABLE_KIND {
            return Err(ChainTableError::Version {
                found: format!("kind {kind:?}"),
            });
        }
        let version = obj
            .get("version")
            .and_then(crate::json::Json::as_int)
            .ok_or_else(|| malformed("missing version"))?;
        if version != CHAIN_TABLE_VERSION {
            return Err(ChainTableError::Version {
                found: format!("version {version}"),
            });
        }
        let pruning = obj
            .get("pruning")
            .and_then(|p| p.as_str())
            .ok_or_else(|| malformed("missing pruning"))?;
        if pruning != "aggressive" {
            return Err(ChainTableError::Version {
                found: format!("pruning {pruning:?}"),
            });
        }
        let dim_b = obj
            .get("dim_b")
            .and_then(crate::json::Json::as_int)
            .ok_or_else(|| malformed("missing dim_b"))?;
        let dim_l = obj
            .get("dim_l")
            .and_then(crate::json::Json::as_int)
            .ok_or_else(|| malformed("missing dim_l"))?;
        let b = usize::try_from(dim_b).map_err(|_| malformed("dim_b overflows"))?;
        let l = usize::try_from(dim_l).map_err(|_| malformed("dim_l overflows"))?;
        let task_strings: Vec<String> = obj
            .get("tasks")
            .and_then(crate::json::Json::as_arr)
            .ok_or_else(|| malformed("missing tasks"))?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| malformed("task is not a string"))
            })
            .collect::<Result<_, _>>()?;
        if task_strings.is_empty() {
            return Err(malformed("empty chain"));
        }
        let cell_strings: Vec<String> = obj
            .get("cells")
            .and_then(crate::json::Json::as_arr)
            .ok_or_else(|| malformed("missing cells"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| malformed("cell is not a string"))
            })
            .collect::<Result<_, _>>()?;
        let n = task_strings.len();
        let expected = n
            .checked_mul(b + 1)
            .and_then(|x| x.checked_mul(l + 1))
            .ok_or_else(|| malformed("cell count overflows"))?;
        if cell_strings.len() != expected {
            return Err(malformed(&format!(
                "expected {expected} cells for {n} tasks at ({b}, {l}), found {}",
                cell_strings.len()
            )));
        }
        let checksum = obj
            .get("checksum")
            .and_then(crate::json::Json::as_int)
            .ok_or_else(|| malformed("missing checksum"))?;
        let computed = Self::checksum(&task_strings, b, l, &cell_strings);
        if checksum != computed {
            return Err(malformed("checksum mismatch"));
        }
        let tasks: Vec<(u64, u64, bool)> = task_strings
            .iter()
            .map(|t| {
                let bad = || malformed(&format!("bad task {t:?}"));
                let mut parts = t.split(',');
                let wb: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let wl: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let rep = match parts.next().ok_or_else(bad)? {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad()),
                };
                if parts.next().is_some() {
                    return Err(bad());
                }
                Ok((wb, wl, rep))
            })
            .collect::<Result<_, _>>()?;
        let cells: Vec<Cell> = cell_strings
            .iter()
            .map(|c| Self::decode_cell(c))
            .collect::<Result<_, _>>()?;
        Ok(ChainTable {
            tasks,
            table: Table { cells, n, b, l },
        })
    }

    /// [`ChainTable::to_json`] rendered compactly.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render_compact()
    }

    /// Parses text straight into a table ([`crate::json::Json::parse`] +
    /// [`ChainTable::from_json`]).
    pub fn parse(text: &str) -> Result<ChainTable, ChainTableError> {
        let doc = crate::json::Json::parse(text).map_err(|e| ChainTableError::Parse {
            offset: e.offset,
            message: e.message,
        })?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn produces_structurally_valid_schedules() {
        let c = chain();
        for (b, l) in [(1, 0), (0, 1), (2, 2), (4, 4), (1, 7), (7, 1)] {
            let r = Resources::new(b, l);
            let s = Herad::new().schedule(&c, r).unwrap();
            assert!(s.validate(&c).is_ok(), "invalid for {r}: {s}");
            let used = s.used_cores();
            assert!(used.big <= b && used.little <= l, "overuse for {r}: {s}");
        }
    }

    #[test]
    fn no_cores_means_no_schedule() {
        assert!(Herad::new()
            .schedule(&chain(), Resources::new(0, 0))
            .is_none());
        assert!(Herad::new()
            .optimal_period(&chain(), Resources::new(0, 0))
            .is_none());
    }

    #[test]
    fn optimal_on_hand_checked_instances() {
        let c = chain();
        // big-only with 3 cores: exhaustive optimum is 7 (see binary_search
        // tests); HeRAD restricted to big cores must match.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(3, 0))
            .unwrap();
        assert_eq!(p, Ratio::from_int(7));
        // little-only with 3 cores: optimum 14.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(0, 3))
            .unwrap();
        assert_eq!(p, Ratio::from_int(14));
        // 2 big + 2 little: stage [0..1] on big (5), [2..3] replicated on
        // big? only 2B available: e.g. [0,1]B=5, [2,3] needs 10/1... the
        // optimum is 6: [0..2]B? = 9. Let the three pruning modes agree and
        // be <= any single-type optimum instead of hand-computing.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(2, 2))
            .unwrap();
        assert!(p <= Ratio::from_int(7));
    }

    #[test]
    fn pruning_modes_agree() {
        let c = chain();
        for (b, l) in [(1, 1), (2, 2), (3, 1), (1, 3), (4, 4), (3, 0), (0, 3)] {
            let r = Resources::new(b, l);
            let none = Herad::with_pruning(Pruning::None).schedule(&c, r).unwrap();
            let lossless = Herad::with_pruning(Pruning::Lossless)
                .schedule(&c, r)
                .unwrap();
            let aggressive = Herad::with_pruning(Pruning::Aggressive)
                .schedule(&c, r)
                .unwrap();
            assert_eq!(
                none.period(&c),
                lossless.period(&c),
                "lossless differs at {r}"
            );
            assert_eq!(
                none.period(&c),
                aggressive.period(&c),
                "aggressive differs at {r}"
            );
            assert_eq!(
                none.used_cores(),
                lossless.used_cores(),
                "lossless tie-break differs at {r}"
            );
        }
    }

    #[test]
    fn single_task_base_case() {
        // Lemma 1: P*(1, b, l) picks the faster type, ties to little.
        let fast_big = TaskChain::new(vec![Task::new(2, 5, true)]);
        let s = Herad::new()
            .schedule(&fast_big, Resources::new(2, 2))
            .unwrap();
        assert_eq!(s.period(&fast_big), Ratio::from_int(1)); // 2/2 on big
        assert_eq!(s.stages()[0].core_type, CoreType::Big);

        let tie = TaskChain::new(vec![Task::new(4, 4, true)]);
        let s = Herad::new().schedule(&tie, Resources::new(2, 2)).unwrap();
        assert_eq!(s.period(&tie), Ratio::from_int(2));
        assert_eq!(
            s.stages()[0].core_type,
            CoreType::Little,
            "ties must favour little cores"
        );
    }

    #[test]
    fn merges_consecutive_replicable_stages() {
        // All-replicable chain: after merging, a single replicated stage
        // per core type at most.
        let c = TaskChain::new(vec![
            Task::new(10, 20, true),
            Task::new(10, 20, true),
            Task::new(10, 20, true),
        ]);
        let s = Herad::new().schedule(&c, Resources::new(3, 0)).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.period(&c), Ratio::from_int(10));
    }

    #[test]
    fn scratch_reuse_across_shrinking_and_growing_shapes_matches_fresh() {
        // One shared scratch across instances whose (n, B, L) shrink and
        // grow between calls: stale DP cells from a larger run must never
        // leak into a smaller one — every warm answer is bit-identical to
        // a fresh allocating solve.
        let wide = TaskChain::new(vec![
            Task::new(5, 5, true),
            Task::new(3, 9, false),
            Task::new(8, 8, true),
            Task::new(2, 7, true),
            Task::new(6, 6, false),
            Task::new(1, 4, true),
            Task::new(9, 9, true),
        ]);
        let tiny = TaskChain::new(vec![Task::new(7, 9, true)]);
        let unit = TaskChain::new(vec![Task::new(1, 1, false)]);
        let shapes: Vec<(&TaskChain, Resources)> = vec![
            (&wide, Resources::new(4, 4)), // big table
            (&tiny, Resources::new(1, 1)), // n shrinks 7 -> 1
            (&wide, Resources::new(1, 0)), // pool shrinks to (1, 0)
            (&wide, Resources::new(6, 2)), // pool grows past the first shape
            (&unit, Resources::new(0, 1)), // everything shrinks at once
            (&unit, Resources::new(0, 0)), // infeasible in between
            (&wide, Resources::new(4, 4)), // back to the big shape
        ];
        for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
            let mut scratch = SchedScratch::new();
            let mut out = Solution::empty();
            for &(c, r) in &shapes {
                let herad = Herad::with_pruning(pruning);
                let warm = herad
                    .schedule_into(c, r, &mut scratch, &mut out)
                    .then(|| out.clone());
                assert_eq!(
                    warm,
                    herad.schedule(c, r),
                    "warm {pruning:?} diverges from fresh at {r}"
                );
                assert_eq!(
                    herad.optimal_period_with(c, r, &mut scratch),
                    herad.optimal_period(c, r),
                    "warm optimal_period diverges at {r}"
                );
            }
        }
    }

    #[test]
    fn replay_memo_never_hits_on_near_miss_instances() {
        // Each instance differs from the previous one in exactly one
        // component of the memo key (a weight, the replicable flag, the
        // pool, the pruning); every warm answer must match a fresh solve,
        // i.e. the memo must detect the difference and recompute.
        let base = vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
        ];
        let mut bumped_weight = base.clone();
        bumped_weight[1].weight_little += 1;
        let mut flipped_rep = base.clone();
        flipped_rep[2].replicable = false;
        let chains = [
            TaskChain::new(base.clone()),
            TaskChain::new(bumped_weight),
            TaskChain::new(flipped_rep),
            TaskChain::new(base),
        ];
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        for pruning in [Pruning::Aggressive, Pruning::Lossless] {
            for chain in &chains {
                for r in [Resources::new(2, 2), Resources::new(2, 1)] {
                    let herad = Herad::with_pruning(pruning);
                    let warm = herad
                        .schedule_into(chain, r, &mut scratch, &mut out)
                        .then(|| out.clone());
                    assert_eq!(warm, herad.schedule(chain, r), "memo leaked at {r}");
                }
            }
        }
    }

    #[test]
    fn replay_memo_ignores_task_names() {
        // Scheduling depends only on weights and replicability, so the
        // memo key deliberately drops names: a renamed copy of the same
        // chain may replay, and the replay must equal its fresh solve.
        let mut named = vec![Task::new(5, 9, true), Task::new(2, 2, false)];
        named[0].name = "acquire".into();
        named[1].name = "decode".into();
        let anon = TaskChain::new(vec![Task::new(5, 9, true), Task::new(2, 2, false)]);
        let named = TaskChain::new(named);
        let r = Resources::new(2, 2);
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        assert!(Herad::new().schedule_into(&anon, r, &mut scratch, &mut out));
        assert!(Herad::new().schedule_into(&named, r, &mut scratch, &mut out));
        assert_eq!(Some(out.clone()), Herad::new().schedule(&named, r));
    }

    #[test]
    fn repeated_warm_solves_are_stable() {
        let c = chain();
        let r = Resources::new(3, 2);
        let cold = Herad::new().schedule(&c, r).unwrap();
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        for _ in 0..5 {
            assert!(Herad::new().schedule_into(&c, r, &mut scratch, &mut out));
            assert_eq!(out, cold);
        }
    }

    #[test]
    fn secondary_objective_prefers_little_cores() {
        // Two equal replicable tasks; 30 on big, 30 on little. One big core
        // or one little core both give period 60; little must win.
        let c = TaskChain::new(vec![Task::new(30, 30, true), Task::new(30, 30, true)]);
        let s = Herad::new().schedule(&c, Resources::new(1, 1)).unwrap();
        let used = s.used_cores();
        assert!(
            used.little >= used.big,
            "expected little-core preference, got {s}"
        );
    }

    #[test]
    fn forced_parallel_matches_sequential_bit_for_bit() {
        // The layer-parallel kernel must agree with the sequential driver
        // on periods, decompositions and tie-break core usage — for every
        // pruning mode and worker count, including more workers than rows.
        let chains = [
            chain(),
            TaskChain::new(vec![Task::new(7, 7, true); 9]),
            TaskChain::new(
                (0..11)
                    .map(|i| Task::new(1 + i % 5, 2 + (i * 3) % 7, i % 3 != 0))
                    .collect(),
            ),
        ];
        for c in &chains {
            for (b, l) in [(4, 4), (6, 1), (1, 6), (5, 0), (0, 5), (3, 3)] {
                let r = Resources::new(b, l);
                for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
                    let seq = Herad::with_pruning(pruning).schedule(c, r);
                    for workers in [2, 3, 8] {
                        let par =
                            Herad::with_pruning_and_parallelism(pruning, workers).schedule(c, r);
                        assert_eq!(
                            par, seq,
                            "parallel({workers}) diverges at {r} with {pruning:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_parallel_handles_degenerate_shapes() {
        let single = TaskChain::new(vec![Task::new(5, 9, true)]);
        let sequential_only = TaskChain::new(vec![
            Task::new(3, 4, false),
            Task::new(2, 2, false),
            Task::new(6, 7, false),
        ]);
        for c in [&single, &sequential_only] {
            for (b, l) in [(0, 1), (1, 0), (1, 1), (0, 3), (3, 0), (2, 5)] {
                let r = Resources::new(b, l);
                let seq = Herad::new().schedule(c, r);
                assert_eq!(Herad::with_parallelism(8).schedule(c, r), seq, "at {r}");
            }
        }
        // Empty pool stays infeasible through the parallel constructor.
        assert!(Herad::with_parallelism(4)
            .schedule(&single, Resources::new(0, 0))
            .is_none());
    }

    #[test]
    fn pool_delta_sweep_matches_fresh_in_any_order() {
        // One scratch across a (b, l) grid visited ascending, descending
        // and shuffled: every incremental solve (sub-table extraction or
        // pool-delta grow) must be bit-identical to a fresh solve.
        let c = chain();
        let mut grid: Vec<(u64, u64)> = (0..=4u64)
            .flat_map(|b| (0..=4u64).map(move |l| (b, l)))
            .collect();
        let ascending = grid.clone();
        let descending: Vec<_> = grid.iter().rev().copied().collect();
        // Deterministic LCG shuffle stands in for "random order".
        let mut state = 0x9e37_79b9_u64;
        for i in (1..grid.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            grid.swap(i, j);
        }
        for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
            for order in [&ascending, &descending, &grid] {
                let herad = Herad::with_pruning(pruning);
                let mut scratch = SchedScratch::new();
                let mut out = Solution::empty();
                for &(b, l) in order {
                    let r = Resources::new(b, l);
                    let warm = herad
                        .schedule_into(&c, r, &mut scratch, &mut out)
                        .then(|| out.clone());
                    assert_eq!(
                        warm,
                        herad.schedule(&c, r),
                        "sweep diverges at {r} with {pruning:?}"
                    );
                    assert_eq!(
                        herad.optimal_period_with(&c, r, &mut scratch),
                        herad.optimal_period(&c, r),
                        "sweep period diverges at {r} with {pruning:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_memo_extracts_without_recompute_for_covered_pools() {
        // After solving at (4, 4), every sub-pool solve must reuse the
        // table: the memo stays keyed to the chain and the table keeps its
        // (4, 4) dimensions (a rebuild would have shrunk them).
        let c = chain();
        let herad = Herad::new();
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        assert!(herad.schedule_into(&c, Resources::new(4, 4), &mut scratch, &mut out));
        for (b, l) in [(1, 1), (4, 0), (0, 4), (2, 3), (4, 4)] {
            assert!(herad.schedule_into(&c, Resources::new(b, l), &mut scratch, &mut out));
            assert_eq!(
                scratch.herad_sweep.table.dim_b(),
                4,
                "table shrank at ({b},{l})"
            );
            assert_eq!(
                scratch.herad_sweep.table.dim_l(),
                4,
                "table shrank at ({b},{l})"
            );
        }
        // A pool outside the table grows it monotonically (never shrinks).
        assert!(herad.schedule_into(&c, Resources::new(6, 2), &mut scratch, &mut out));
        assert_eq!(scratch.herad_sweep.table.dim_b(), 6);
        assert_eq!(scratch.herad_sweep.table.dim_l(), 4);
    }

    #[test]
    fn chain_table_extracts_every_covered_pool_bit_identically() {
        let c = chain();
        let mut table = ChainTable::solve(&c, Resources::new(2, 1));
        assert!(table.matches(&c));
        // Grow through a few pools, then extract the full grid.
        table.grow_to(&c, Resources::new(4, 3));
        table.grow_to(&c, Resources::new(3, 4));
        assert_eq!(table.dims(), (4, 4));
        let mut out = Solution::empty();
        for b in 0..=4u64 {
            for l in 0..=4u64 {
                let r = Resources::new(b, l);
                assert!(table.covers(r));
                let warm = table.extract(&c, r, &mut out).then(|| out.clone());
                assert_eq!(warm, Herad::new().schedule(&c, r), "diverges at {r}");
                assert_eq!(
                    table.period_at(r),
                    Herad::new().optimal_period(&c, r),
                    "period diverges at {r}"
                );
            }
        }
    }

    #[test]
    fn chain_table_round_trips_through_json() {
        let c = chain();
        let mut table = ChainTable::solve(&c, Resources::new(1, 0));
        table.grow_to(&c, Resources::new(3, 3));
        let text = table.render();
        let loaded = ChainTable::parse(&text).expect("round trip");
        assert_eq!(loaded.tasks(), table.tasks());
        assert_eq!(loaded.dims(), table.dims());
        // Identical re-render (bitwise stable serialization)...
        assert_eq!(loaded.render(), text);
        // ...and identical answers, including after further growth.
        let mut grown = loaded;
        grown.grow_to(&c, Resources::new(5, 4));
        let mut out = Solution::empty();
        for (b, l) in [(0, 0), (1, 1), (3, 3), (0, 3), (3, 0), (5, 4), (2, 4)] {
            let r = Resources::new(b, l);
            let warm = grown.extract(&c, r, &mut out).then(|| out.clone());
            assert_eq!(warm, Herad::new().schedule(&c, r), "diverges at {r}");
        }
    }

    #[test]
    fn chain_table_rejects_corrupt_documents() {
        let c = chain();
        let table = ChainTable::solve(&c, Resources::new(2, 2));
        let text = table.render();
        // Not JSON at all.
        assert!(matches!(
            ChainTable::parse("not json"),
            Err(ChainTableError::Parse { .. })
        ));
        // Truncation: either a parse error or a malformed payload,
        // never a panic or a table.
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            assert!(ChainTable::parse(&text[..cut]).is_err(), "cut at {cut}");
        }
        // Version skew.
        let skewed = text.replace("\"version\":1", "\"version\":2");
        assert!(matches!(
            ChainTable::parse(&skewed),
            Err(ChainTableError::Version { .. })
        ));
        let alien = text.replace("amp-chain-table", "amp-other-thing");
        assert!(matches!(
            ChainTable::parse(&alien),
            Err(ChainTableError::Version { .. })
        ));
        // Content tampering: a flipped digit fails the checksum.
        let idx = text.find("\"cells\":[\"").expect("cells field") + "\"cells\":[\"".len();
        let mut tampered = text.clone();
        let original = tampered.as_bytes()[idx];
        let flipped = if original == b'1' { '2' } else { '1' };
        tampered.replace_range(idx..=idx, &flipped.to_string());
        assert!(matches!(
            ChainTable::parse(&tampered),
            Err(ChainTableError::Malformed { .. })
        ));
        // Checksum tampering is equally fatal.
        let fake = text.replace("\"checksum\":", "\"checksum\":1");
        assert!(ChainTable::parse(&fake).is_err());
    }

    #[test]
    fn chain_table_solves_and_serializes_degenerate_pools() {
        let single = TaskChain::new(vec![Task::new(5, 9, true)]);
        for (b, l) in [(0, 0), (1, 0), (0, 1)] {
            let table = ChainTable::solve(&single, Resources::new(b, l));
            let loaded = ChainTable::parse(&table.render()).expect("round trip");
            let r = Resources::new(b, l);
            let mut out = Solution::empty();
            let warm = loaded.extract(&single, r, &mut out).then(|| out.clone());
            assert_eq!(warm, Herad::new().schedule(&single, r), "at {r}");
        }
    }
}
