//! HeRAD — *Heterogeneous Resource Allocation using Dynamic programming*
//! (Section V, Algorithms 7–11): the optimal solution to the period
//! minimization problem, also optimal for the secondary objective of using
//! as many little cores as necessary.
//!
//! The DP computes `P*(j, b, l)` — the best period for the first `j` tasks
//! on `b` big and `l` little cores — via the recurrence of Eq. (4):
//! try every start `i` for the stage finishing at `τ_j` and every core
//! assignment `u` of either type, combining with the optimal prefix
//! `P*(i-1, ·, ·)`.
//!
//! The naive recurrence costs `O(n² b l (b+l))`, which is prohibitive for
//! the paper's Fig. 3/4 sweeps. [`Pruning`] selects how aggressively
//! provably-useless candidates are skipped; all modes return optimal
//! *periods* (property-tested against each other and against exhaustive
//! search), see each variant for the tie-breaking guarantee.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{Solution, Stage};

/// Candidate-skipping policy for HeRAD's inner loops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pruning {
    /// No pruning beyond the paper's own "sequential stages use one core"
    /// optimization. Reference implementation for tests.
    None,
    /// Skips only candidates that are provably *strictly worse in period*
    /// than the best already found for the cell: identical results to
    /// [`Pruning::None`], bit for bit (period and tie-breaking).
    Lossless,
    /// Additionally stops raising the replication count once the stage
    /// weight drops to (or below) the prefix period: every further
    /// candidate ties or worsens the period while using more cores, so the
    /// period stays optimal; in rare ties a different (never larger-period)
    /// core mix may be preferred. Default: orders of magnitude faster on
    /// large core counts.
    #[default]
    Aggressive,
}

/// The HeRAD scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct Herad {
    pruning: Pruning,
}

impl Herad {
    /// HeRAD with the default (aggressive, period-optimal) pruning.
    #[must_use]
    pub fn new() -> Self {
        Herad::default()
    }

    /// HeRAD with an explicit pruning policy.
    #[must_use]
    pub fn with_pruning(pruning: Pruning) -> Self {
        Herad { pruning }
    }

    /// The optimal period for the chain on these resources, without
    /// extracting the schedule.
    #[must_use]
    pub fn optimal_period(&self, chain: &TaskChain, resources: Resources) -> Option<Ratio> {
        let mut scratch = SchedScratch::new();
        self.optimal_period_with(chain, resources, &mut scratch)
    }

    /// [`Herad::optimal_period`] reusing the caller's scratch
    /// (allocation-free once the DP table has warmed up).
    #[must_use]
    pub fn optimal_period_with(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
    ) -> Option<Ratio> {
        if resources.is_exhausted() {
            return None;
        }
        let dp = Dp::run(chain, resources, self.pruning, &mut scratch.herad_cells);
        let p = dp.cell(chain.len(), resources.big, resources.little).pbest;
        p.is_finite().then_some(p)
    }
}

impl Scheduler for Herad {
    fn name(&self) -> &'static str {
        "HeRAD"
    }

    /// Consults the scratch's replay memo first: when the instance is
    /// bit-identical to the previous solve (same weights, replicability,
    /// pool and pruning), the stored solution is replayed verbatim —
    /// the DP is deterministic, so the replay *is* the recomputation.
    /// Any difference falls through to a full solve, which then refreshes
    /// the memo.
    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        out.stages_mut().clear();
        if resources.is_exhausted() {
            return false;
        }
        if let Some(memo) = &scratch.herad_memo {
            if memo.matches(self.pruning, chain, resources) {
                out.stages_mut().extend_from_slice(&memo.stages);
                return memo.feasible;
            }
        }
        let feasible = {
            let dp = Dp::run(chain, resources, self.pruning, &mut scratch.herad_cells);
            dp.extract_solution_into(chain, out.stages_mut())
        };
        if feasible {
            out.merge_replicable_stages_in_place(chain);
        }
        let memo = scratch
            .herad_memo
            .get_or_insert_with(crate::sched::scratch::HeradMemo::empty);
        memo.pruning = self.pruning;
        memo.resources = resources;
        memo.feasible = feasible;
        memo.tasks.clear();
        memo.tasks.extend(
            chain
                .tasks()
                .iter()
                .map(|t| (t.weight_big, t.weight_little, t.replicable)),
        );
        memo.stages.clear();
        memo.stages.extend_from_slice(out.stages());
        feasible
    }
}

/// One cell of the solution matrix `S[j][b][l]` (Algorithm 7, lines 1–7).
/// `pub(crate)` so [`SchedScratch`] can park the table between runs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cell {
    /// `S_Pbest`: minimal maximum period.
    pbest: Ratio,
    /// `S_prev`: big and little cores available to the previous stages.
    prev_b: u32,
    prev_l: u32,
    /// `S_acc`: accumulated big and little cores used by the solution.
    acc_b: u32,
    acc_l: u32,
    /// `S_v`: type of core used in the last stage.
    v: CoreType,
    /// `S_start`: 0-based index of the first task of the last stage.
    start: u32,
}

const EMPTY_CELL: Cell = Cell {
    pbest: Ratio::INFINITY,
    prev_b: 0,
    prev_l: 0,
    acc_b: 0,
    acc_l: 0,
    v: CoreType::Little,
    start: 0,
};

/// The virtual row 0 (`P*(0, ·, ·) = 0`): an empty prefix using no cores.
const ZERO_CELL: Cell = Cell {
    pbest: Ratio::ZERO,
    prev_b: 0,
    prev_l: 0,
    acc_b: 0,
    acc_l: 0,
    v: CoreType::Little,
    start: 0,
};

/// `CompareCells` (Algorithm 10): whether the new cell `n` should replace
/// the current cell `c` — strictly better period, or an equal period with a
/// better big→little exchange, or an equal period using no more cores of
/// either type.
fn replaces(c: &Cell, n: &Cell) -> bool {
    if n.pbest < c.pbest {
        return true;
    }
    if n.pbest > c.pbest {
        return false;
    }
    (c.acc_l < n.acc_l && c.acc_b > n.acc_b) || (c.acc_l >= n.acc_l && c.acc_b >= n.acc_b)
}

fn compare_cells(c: Cell, n: Cell) -> Cell {
    if replaces(&c, &n) {
        n
    } else {
        c
    }
}

struct Dp<'a> {
    cells: &'a mut Vec<Cell>,
    b: usize,
    l: usize,
    resources: Resources,
}

impl<'a> Dp<'a> {
    /// Runs the DP on a caller-provided cell table, growing it when the
    /// shape needs more cells but never refilling what it already has.
    ///
    /// Skipping the full `EMPTY_CELL` fill is safe because the recurrence
    /// writes every cell it will ever read *within the same run*:
    /// `single_stage_solution(t)` overwrites all of row `t` except
    /// `(t, 0, 0)` before `recompute_cell` touches row `t`, prefix reads
    /// only reach rows already recomputed (or the virtual `ZERO_CELL`),
    /// and extraction follows only finite cells, whose back-pointers were
    /// written this run. The single exception — the `(j, 0, 0)` column,
    /// read by `single_stage_solution`'s big-core loop at `rl == 0` and
    /// by neighbour propagation — is reset explicitly below. Stale cells
    /// from an earlier, differently-shaped run (even ones holding finite
    /// periods at remapped indices) are therefore never observed, and a
    /// warm run is bit-for-bit identical to a cold one.
    fn run(
        chain: &TaskChain,
        resources: Resources,
        pruning: Pruning,
        cells: &'a mut Vec<Cell>,
    ) -> Dp<'a> {
        let n = chain.len();
        let b = usize::try_from(resources.big).expect("core count fits usize");
        let l = usize::try_from(resources.little).expect("core count fits usize");
        let len = n * (b + 1) * (l + 1);
        if cells.len() < len {
            cells.resize(len, EMPTY_CELL);
        }
        let mut dp = Dp {
            cells,
            b,
            l,
            resources,
        };
        for j in 1..=n {
            let i = dp.idx(j, 0, 0);
            dp.cells[i] = EMPTY_CELL;
        }
        dp.single_stage_solution(chain, 1);
        for j in 2..=n {
            dp.single_stage_solution(chain, j);
            for rb in 0..=b {
                for rl in 0..=l {
                    if rb != 0 || rl != 0 {
                        dp.recompute_cell(chain, j, rb, rl, pruning);
                    }
                }
            }
        }
        dp
    }

    #[inline]
    fn idx(&self, j: usize, rb: usize, rl: usize) -> usize {
        ((j - 1) * (self.b + 1) + rb) * (self.l + 1) + rl
    }

    /// `S[j][rb][rl]`, with the virtual zero row for `j == 0`.
    #[inline]
    fn cell(&self, j: usize, rb: u64, rl: u64) -> Cell {
        if j == 0 {
            ZERO_CELL
        } else {
            self.cells[self.idx(j, rb as usize, rl as usize)]
        }
    }

    #[inline]
    fn cell_ref(&self, j: usize, rb: usize, rl: usize) -> &Cell {
        &self.cells[self.idx(j, rb, rl)]
    }

    #[inline]
    fn set(&mut self, j: usize, rb: usize, rl: usize, cell: Cell) {
        let i = self.idx(j, rb, rl);
        self.cells[i] = cell;
    }

    /// Stage weight without gcd normalization (hot path).
    #[inline]
    fn weight(
        chain: &TaskChain,
        start: usize,
        end: usize,
        rep: bool,
        u: u64,
        v: CoreType,
    ) -> Ratio {
        let sum = u128::from(chain.interval_sum(start, end, v));
        if rep {
            Ratio::new_raw(sum, u128::from(u))
        } else {
            Ratio::new_raw(sum, 1)
        }
    }

    /// `SingleStageSolution` (Algorithm 8): fills row `t` with the best
    /// solutions that place all `t` first tasks in a single stage.
    fn single_stage_solution(&mut self, chain: &TaskChain, t: usize) {
        let rep = chain.is_replicable(0, t - 1);
        // Little-core stages in column rb = 0 (cell (t,0,0) stays invalid).
        for rl in 1..=self.l {
            let w = Self::weight(chain, 0, t - 1, rep, rl as u64, CoreType::Little);
            self.set(
                t,
                0,
                rl,
                Cell {
                    pbest: w,
                    prev_b: 0,
                    prev_l: 0,
                    acc_b: 0,
                    acc_l: if rep { rl as u32 } else { 1 },
                    v: CoreType::Little,
                    start: 0,
                },
            );
        }
        // Big-core stages, compared against the little-core alternative;
        // ties go to the little cores (strict `<`, Algorithm 8 line 9).
        for rb in 1..=self.b {
            let wb = Self::weight(chain, 0, t - 1, rep, rb as u64, CoreType::Big);
            let ub = if rep { rb as u32 } else { 1 };
            for rl in 0..=self.l {
                let little = *self.cell_ref(t, 0, rl);
                let cell = if wb < little.pbest {
                    Cell {
                        pbest: wb,
                        prev_b: 0,
                        prev_l: 0,
                        acc_b: ub,
                        acc_l: 0,
                        v: CoreType::Big,
                        start: 0,
                    }
                } else {
                    little
                };
                self.set(t, rb, rl, cell);
            }
        }
    }

    /// `RecomputeCell` (Algorithm 9): computes `P*(j, b_av, l_av)` from the
    /// single-stage seed, the two fewer-core neighbour cells, and every
    /// (start, core-count, core-type) split of the last stage.
    fn recompute_cell(
        &mut self,
        chain: &TaskChain,
        j: usize,
        b_av: usize,
        l_av: usize,
        pruning: Pruning,
    ) {
        let mut c = *self.cell_ref(j, b_av, l_av);
        // Propagate solutions that simply leave one core unused.
        if l_av > 0 {
            c = compare_cells(c, *self.cell_ref(j, b_av, l_av - 1));
        }
        if b_av > 0 {
            c = compare_cells(c, *self.cell_ref(j, b_av - 1, l_av));
        }
        for i in (1..=j).rev() {
            // 1-based stage [τ_i, τ_j] = 0-based tasks [i-1, j-1].
            let (s, e) = (i - 1, j - 1);
            let rep = chain.is_replicable(s, e);
            if pruning != Pruning::None && c.pbest.is_finite() {
                // Even with every available core, this stage (and any longer
                // one: weights grow as i decreases) exceeds the best found.
                let mut min_w = Ratio::INFINITY;
                if b_av > 0 {
                    let u = if rep { b_av as u64 } else { 1 };
                    min_w = min_w.min(Self::weight(chain, s, e, rep, u, CoreType::Big));
                }
                if l_av > 0 {
                    let u = if rep { l_av as u64 } else { 1 };
                    min_w = min_w.min(Self::weight(chain, s, e, rep, u, CoreType::Little));
                }
                if min_w > c.pbest {
                    break;
                }
            }
            for v in CoreType::BOTH {
                let avail = match v {
                    CoreType::Big => b_av,
                    CoreType::Little => l_av,
                };
                // The paper's optimization: a sequential stage cannot use
                // more than one core.
                let u_max = if rep { avail } else { avail.min(1) };
                for u in 1..=u_max {
                    let (pb, pl) = match v {
                        CoreType::Big => (b_av - u, l_av),
                        CoreType::Little => (b_av, l_av - u),
                    };
                    let prefix = self.cell(i - 1, pb as u64, pl as u64);
                    if pruning != Pruning::None && prefix.pbest > c.pbest {
                        // Prefixes only get worse as this stage takes more
                        // cores; every remaining candidate is strictly worse.
                        break;
                    }
                    let w = Self::weight(chain, s, e, rep, u as u64, v);
                    let used = if rep { u as u32 } else { 1 };
                    let cand = Cell {
                        pbest: prefix.pbest.max(w),
                        prev_b: pb as u32,
                        prev_l: pl as u32,
                        acc_b: prefix.acc_b + if v == CoreType::Big { used } else { 0 },
                        acc_l: prefix.acc_l + if v == CoreType::Little { used } else { 0 },
                        v,
                        start: s as u32,
                    };
                    c = compare_cells(c, cand);
                    if pruning == Pruning::Aggressive && w <= prefix.pbest {
                        // Crossing rule: more cores cannot lower the period
                        // below the prefix period.
                        break;
                    }
                }
            }
        }
        self.set(j, b_av, l_av, c);
    }

    /// `ExtractSolution` (Algorithm 11): walks the matrix backwards from
    /// `S[n][b][l]`, reconstructing each stage's interval, core type and
    /// core count (from the difference of accumulated usages) into the
    /// caller's buffer. Returns `false` (buffer left empty) when the
    /// instance is infeasible.
    fn extract_solution_into(&self, chain: &TaskChain, stages: &mut Vec<Stage>) -> bool {
        stages.clear();
        let n = chain.len();
        let final_cell = self.cell(n, self.resources.big, self.resources.little);
        if final_cell.pbest.is_infinite() {
            return false;
        }
        let mut e = n;
        let mut rb = self.resources.big;
        let mut rl = self.resources.little;
        while e >= 1 {
            let cell = self.cell(e, rb, rl);
            debug_assert!(cell.pbest.is_finite());
            let start = cell.start as usize;
            let (mut ub, mut ul) = (cell.acc_b, cell.acc_l);
            let (pb, pl) = (u64::from(cell.prev_b), u64::from(cell.prev_l));
            if start > 0 {
                let prefix = self.cell(start, pb, pl);
                ub -= prefix.acc_b;
                ul -= prefix.acc_l;
            }
            let r = match cell.v {
                CoreType::Big => ub,
                CoreType::Little => ul,
            };
            debug_assert!(r >= 1, "stage with zero cores during extraction");
            stages.push(Stage::new(start, e - 1, u64::from(r), cell.v));
            e = start;
            rb = pb;
            rl = pl;
        }
        stages.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn produces_structurally_valid_schedules() {
        let c = chain();
        for (b, l) in [(1, 0), (0, 1), (2, 2), (4, 4), (1, 7), (7, 1)] {
            let r = Resources::new(b, l);
            let s = Herad::new().schedule(&c, r).unwrap();
            assert!(s.validate(&c).is_ok(), "invalid for {r}: {s}");
            let used = s.used_cores();
            assert!(used.big <= b && used.little <= l, "overuse for {r}: {s}");
        }
    }

    #[test]
    fn no_cores_means_no_schedule() {
        assert!(Herad::new()
            .schedule(&chain(), Resources::new(0, 0))
            .is_none());
        assert!(Herad::new()
            .optimal_period(&chain(), Resources::new(0, 0))
            .is_none());
    }

    #[test]
    fn optimal_on_hand_checked_instances() {
        let c = chain();
        // big-only with 3 cores: exhaustive optimum is 7 (see binary_search
        // tests); HeRAD restricted to big cores must match.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(3, 0))
            .unwrap();
        assert_eq!(p, Ratio::from_int(7));
        // little-only with 3 cores: optimum 14.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(0, 3))
            .unwrap();
        assert_eq!(p, Ratio::from_int(14));
        // 2 big + 2 little: stage [0..1] on big (5), [2..3] replicated on
        // big? only 2B available: e.g. [0,1]B=5, [2,3] needs 10/1... the
        // optimum is 6: [0..2]B? = 9. Let the three pruning modes agree and
        // be <= any single-type optimum instead of hand-computing.
        let p = Herad::new()
            .optimal_period(&c, Resources::new(2, 2))
            .unwrap();
        assert!(p <= Ratio::from_int(7));
    }

    #[test]
    fn pruning_modes_agree() {
        let c = chain();
        for (b, l) in [(1, 1), (2, 2), (3, 1), (1, 3), (4, 4), (3, 0), (0, 3)] {
            let r = Resources::new(b, l);
            let none = Herad::with_pruning(Pruning::None).schedule(&c, r).unwrap();
            let lossless = Herad::with_pruning(Pruning::Lossless)
                .schedule(&c, r)
                .unwrap();
            let aggressive = Herad::with_pruning(Pruning::Aggressive)
                .schedule(&c, r)
                .unwrap();
            assert_eq!(
                none.period(&c),
                lossless.period(&c),
                "lossless differs at {r}"
            );
            assert_eq!(
                none.period(&c),
                aggressive.period(&c),
                "aggressive differs at {r}"
            );
            assert_eq!(
                none.used_cores(),
                lossless.used_cores(),
                "lossless tie-break differs at {r}"
            );
        }
    }

    #[test]
    fn single_task_base_case() {
        // Lemma 1: P*(1, b, l) picks the faster type, ties to little.
        let fast_big = TaskChain::new(vec![Task::new(2, 5, true)]);
        let s = Herad::new()
            .schedule(&fast_big, Resources::new(2, 2))
            .unwrap();
        assert_eq!(s.period(&fast_big), Ratio::from_int(1)); // 2/2 on big
        assert_eq!(s.stages()[0].core_type, CoreType::Big);

        let tie = TaskChain::new(vec![Task::new(4, 4, true)]);
        let s = Herad::new().schedule(&tie, Resources::new(2, 2)).unwrap();
        assert_eq!(s.period(&tie), Ratio::from_int(2));
        assert_eq!(
            s.stages()[0].core_type,
            CoreType::Little,
            "ties must favour little cores"
        );
    }

    #[test]
    fn merges_consecutive_replicable_stages() {
        // All-replicable chain: after merging, a single replicated stage
        // per core type at most.
        let c = TaskChain::new(vec![
            Task::new(10, 20, true),
            Task::new(10, 20, true),
            Task::new(10, 20, true),
        ]);
        let s = Herad::new().schedule(&c, Resources::new(3, 0)).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.period(&c), Ratio::from_int(10));
    }

    #[test]
    fn scratch_reuse_across_shrinking_and_growing_shapes_matches_fresh() {
        // One shared scratch across instances whose (n, B, L) shrink and
        // grow between calls: stale DP cells from a larger run must never
        // leak into a smaller one — every warm answer is bit-identical to
        // a fresh allocating solve.
        let wide = TaskChain::new(vec![
            Task::new(5, 5, true),
            Task::new(3, 9, false),
            Task::new(8, 8, true),
            Task::new(2, 7, true),
            Task::new(6, 6, false),
            Task::new(1, 4, true),
            Task::new(9, 9, true),
        ]);
        let tiny = TaskChain::new(vec![Task::new(7, 9, true)]);
        let unit = TaskChain::new(vec![Task::new(1, 1, false)]);
        let shapes: Vec<(&TaskChain, Resources)> = vec![
            (&wide, Resources::new(4, 4)), // big table
            (&tiny, Resources::new(1, 1)), // n shrinks 7 -> 1
            (&wide, Resources::new(1, 0)), // pool shrinks to (1, 0)
            (&wide, Resources::new(6, 2)), // pool grows past the first shape
            (&unit, Resources::new(0, 1)), // everything shrinks at once
            (&unit, Resources::new(0, 0)), // infeasible in between
            (&wide, Resources::new(4, 4)), // back to the big shape
        ];
        for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
            let mut scratch = SchedScratch::new();
            let mut out = Solution::empty();
            for &(c, r) in &shapes {
                let herad = Herad::with_pruning(pruning);
                let warm = herad
                    .schedule_into(c, r, &mut scratch, &mut out)
                    .then(|| out.clone());
                assert_eq!(
                    warm,
                    herad.schedule(c, r),
                    "warm {pruning:?} diverges from fresh at {r}"
                );
                assert_eq!(
                    herad.optimal_period_with(c, r, &mut scratch),
                    herad.optimal_period(c, r),
                    "warm optimal_period diverges at {r}"
                );
            }
        }
    }

    #[test]
    fn replay_memo_never_hits_on_near_miss_instances() {
        // Each instance differs from the previous one in exactly one
        // component of the memo key (a weight, the replicable flag, the
        // pool, the pruning); every warm answer must match a fresh solve,
        // i.e. the memo must detect the difference and recompute.
        let base = vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
        ];
        let mut bumped_weight = base.clone();
        bumped_weight[1].weight_little += 1;
        let mut flipped_rep = base.clone();
        flipped_rep[2].replicable = false;
        let chains = [
            TaskChain::new(base.clone()),
            TaskChain::new(bumped_weight),
            TaskChain::new(flipped_rep),
            TaskChain::new(base),
        ];
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        for pruning in [Pruning::Aggressive, Pruning::Lossless] {
            for chain in &chains {
                for r in [Resources::new(2, 2), Resources::new(2, 1)] {
                    let herad = Herad::with_pruning(pruning);
                    let warm = herad
                        .schedule_into(chain, r, &mut scratch, &mut out)
                        .then(|| out.clone());
                    assert_eq!(warm, herad.schedule(chain, r), "memo leaked at {r}");
                }
            }
        }
    }

    #[test]
    fn replay_memo_ignores_task_names() {
        // Scheduling depends only on weights and replicability, so the
        // memo key deliberately drops names: a renamed copy of the same
        // chain may replay, and the replay must equal its fresh solve.
        let mut named = vec![Task::new(5, 9, true), Task::new(2, 2, false)];
        named[0].name = "acquire".into();
        named[1].name = "decode".into();
        let anon = TaskChain::new(vec![Task::new(5, 9, true), Task::new(2, 2, false)]);
        let named = TaskChain::new(named);
        let r = Resources::new(2, 2);
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        assert!(Herad::new().schedule_into(&anon, r, &mut scratch, &mut out));
        assert!(Herad::new().schedule_into(&named, r, &mut scratch, &mut out));
        assert_eq!(Some(out.clone()), Herad::new().schedule(&named, r));
    }

    #[test]
    fn repeated_warm_solves_are_stable() {
        let c = chain();
        let r = Resources::new(3, 2);
        let cold = Herad::new().schedule(&c, r).unwrap();
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        for _ in 0..5 {
            assert!(Herad::new().schedule_into(&c, r, &mut scratch, &mut out));
            assert_eq!(out, cold);
        }
    }

    #[test]
    fn secondary_objective_prefers_little_cores() {
        // Two equal replicable tasks; 30 on big, 30 on little. One big core
        // or one little core both give period 60; little must win.
        let c = TaskChain::new(vec![Task::new(30, 30, true), Task::new(30, 30, true)]);
        let s = Herad::new().schedule(&c, Resources::new(1, 1)).unwrap();
        let used = s.used_cores();
        assert!(
            used.little >= used.big,
            "expected little-core preference, got {s}"
        );
    }
}
