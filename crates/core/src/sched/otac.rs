//! OTAC restricted to one core type — the homogeneous baseline of the
//! paper's evaluation (`OTAC (B)` and `OTAC (L)`).
//!
//! OTAC (Orhan et al., 2023) is optimal for partially-replicable task
//! chains on homogeneous resources; its building blocks (binary search on
//! the period + greedy maximal packing per stage) are exactly the common
//! methods of Algorithms 1–3, so the single-type specialization of the
//! FERTAC recursion *is* OTAC.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use crate::sched::binary_search::schedule_binary_search_into;
use crate::sched::support::{compute_stage, stage_fits};
use crate::sched::{SchedScratch, Scheduler};
use crate::solution::{Solution, Stage};

/// OTAC on a single core type. `Otac::big()` ignores little cores;
/// `Otac::little()` ignores big ones.
#[derive(Clone, Copy, Debug)]
pub struct Otac {
    core_type: CoreType,
}

impl Otac {
    /// OTAC using only the big cores of the resource pool.
    #[must_use]
    pub fn big() -> Self {
        Otac {
            core_type: CoreType::Big,
        }
    }

    /// OTAC using only the little cores of the resource pool.
    #[must_use]
    pub fn little() -> Self {
        Otac {
            core_type: CoreType::Little,
        }
    }

    /// The core type this instance schedules on.
    #[must_use]
    pub fn core_type(&self) -> CoreType {
        self.core_type
    }
}

impl Scheduler for Otac {
    fn name(&self) -> &'static str {
        match self.core_type {
            CoreType::Big => "OTAC (B)",
            CoreType::Little => "OTAC (L)",
        }
    }

    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        let v = self.core_type;
        let masked = match v {
            CoreType::Big => Resources::new(resources.big, 0),
            CoreType::Little => Resources::new(0, resources.little),
        };
        schedule_binary_search_into(chain, masked, scratch, out, |c, r, p, _scratch, buf| {
            greedy_into(c, r, v, p, buf)
        })
    }
}

/// Greedy stage construction over a single core type (OTAC's
/// ComputeSolution), filling the caller's buffer. Returns `false`
/// (clearing `out`) when the target period is unreachable.
fn greedy_into(
    chain: &TaskChain,
    resources: Resources,
    v: CoreType,
    target: Ratio,
    out: &mut Vec<Stage>,
) -> bool {
    out.clear();
    let n = chain.len();
    let mut left = resources.of(v);
    let mut start = 0;
    while start < n {
        let (end, used) = compute_stage(chain, start, left, v, target);
        if !stage_fits(chain, start, end, used, left, v, target) {
            out.clear();
            return false;
        }
        out.push(Stage::new(start, end, used, v));
        left -= used;
        start = end + 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(3, 6, false),
            Task::new(2, 4, true),
            Task::new(4, 8, true),
            Task::new(6, 12, true),
            Task::new(1, 2, false),
        ])
    }

    #[test]
    fn big_variant_never_touches_little_cores() {
        let c = chain();
        let s = Otac::big().schedule(&c, Resources::new(3, 8)).unwrap();
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.used_cores().little, 0);
        assert_eq!(s.period(&c), Ratio::from_int(7));
    }

    #[test]
    fn little_variant_never_touches_big_cores() {
        let c = chain();
        let s = Otac::little().schedule(&c, Resources::new(8, 3)).unwrap();
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.used_cores().big, 0);
        // little weights [6,4,8,12,2]: optimum with 3 cores is 14
        // ([0,1] = 10 | [2] = 8 | [3,4] = 14).
        assert_eq!(s.period(&c), Ratio::from_int(14));
    }

    #[test]
    fn none_when_its_type_is_absent() {
        let c = chain();
        assert!(Otac::big().schedule(&c, Resources::new(0, 8)).is_none());
        assert!(Otac::little().schedule(&c, Resources::new(8, 0)).is_none());
    }

    #[test]
    fn replicates_fully_replicable_chains_across_all_cores() {
        let c = TaskChain::new(vec![Task::new(5, 10, true), Task::new(5, 10, true)]);
        let s = Otac::big().schedule(&c, Resources::new(5, 0)).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.period(&c), Ratio::from_int(2));
        assert_eq!(s.stages()[0].cores, 5);
    }
}
