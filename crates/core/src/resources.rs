//! The two-type resource model: `R = (b, l)` big and little cores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two core types of a heterogeneous (big.LITTLE-style) processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreType {
    /// High-performance ("big", P-) core.
    Big,
    /// High-efficiency ("little", E-) core.
    Little,
}

impl CoreType {
    /// Both core types, in the order 2CATAC explores them (Algorithm 5).
    pub const BOTH: [CoreType; 2] = [CoreType::Big, CoreType::Little];

    /// The other core type.
    #[must_use]
    pub fn other(self) -> CoreType {
        match self {
            CoreType::Big => CoreType::Little,
            CoreType::Little => CoreType::Big,
        }
    }

    /// Single-letter label used in the paper's tables (`B` / `L`).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            CoreType::Big => 'B',
            CoreType::Little => 'L',
        }
    }
}

impl fmt::Display for CoreType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A pool of cores of both types, `R = (b, l)` in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resources {
    /// Number of big cores, `b`.
    pub big: u64,
    /// Number of little cores, `l`.
    pub little: u64,
}

impl Resources {
    /// Builds `R = (b, l)`.
    #[must_use]
    pub fn new(big: u64, little: u64) -> Self {
        Resources { big, little }
    }

    /// Total number of cores `b + l`.
    #[must_use]
    pub fn total(self) -> u64 {
        self.big + self.little
    }

    /// Cores of the given type.
    #[must_use]
    pub fn of(self, v: CoreType) -> u64 {
        match v {
            CoreType::Big => self.big,
            CoreType::Little => self.little,
        }
    }

    /// Removes `n` cores of type `v` (saturating is a bug: panics in debug
    /// if more cores are removed than available).
    #[must_use]
    pub fn minus(self, v: CoreType, n: u64) -> Resources {
        match v {
            CoreType::Big => {
                debug_assert!(n <= self.big);
                Resources::new(self.big - n, self.little)
            }
            CoreType::Little => {
                debug_assert!(n <= self.little);
                Resources::new(self.big, self.little - n)
            }
        }
    }

    /// Whether both counts are zero.
    #[must_use]
    pub fn is_exhausted(self) -> bool {
        self.big == 0 && self.little == 0
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}B, {}L)", self.big, self.little)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Resources::new(10, 4);
        assert_eq!(r.total(), 14);
        assert_eq!(r.of(CoreType::Big), 10);
        assert_eq!(r.of(CoreType::Little), 4);
        assert!(!r.is_exhausted());
        assert!(Resources::new(0, 0).is_exhausted());
    }

    #[test]
    fn minus_removes_by_type() {
        let r = Resources::new(10, 4);
        assert_eq!(r.minus(CoreType::Big, 3), Resources::new(7, 4));
        assert_eq!(r.minus(CoreType::Little, 4), Resources::new(10, 0));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Resources::new(16, 4).to_string(), "(16B, 4L)");
        assert_eq!(CoreType::Big.to_string(), "B");
        assert_eq!(CoreType::Little.other(), CoreType::Big);
    }
}
