//! A minimal, dependency-free canonical JSON codec.
//!
//! The offline build stubs out `serde_json` (see `third_party/`), so
//! everything that speaks JSON — the conformance regression corpus, the
//! service status snapshots, and the `amp-net` wire protocol — shares this
//! codec instead. It implements the subset those formats need — objects,
//! arrays, strings, unsigned integers, booleans — with a recursive-descent
//! parser and two deterministic renderers: an indented form for files read
//! by humans ([`Json::render`]) and a single-line form for
//! newline-delimited wire framing ([`Json::render_compact`]).
//!
//! Deliberate limits (documents violating them are rejected loudly rather
//! than mis-read): numbers are unsigned 64-bit integers — no floats, no
//! signs (exact rationals travel as `"num/den"` strings instead, so wire
//! values never lose precision) — and duplicate object keys are an error.
//! Both renderers are fixpoints under `parse`: `parse(render(v)) == v` and
//! re-rendering parsed canonical output reproduces it byte-for-byte.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the codec accepts).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization order-stable.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure with a byte offset for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    /// Returns a [`JsonError`] with the offending byte offset on any
    /// syntax violation or unsupported construct (floats, duplicate keys).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// canonical file format (`parse(render(v)) == v`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the canonical
    /// wire format for newline-delimited framing. The output never
    /// contains a raw newline (strings escape control characters), so one
    /// value always occupies exactly one line.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'0'..=b'9') => self.integer(),
            Some(b'-') => Err(self.err("negative numbers are not part of the format")),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn integer(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if text.len() > 1 && text.starts_with('0') {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        text.parse::<u64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of u64 range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape outside the BMP subset"))?;
                            out.push(c);
                            self.pos += 3; // the final +1 below covers the 4th digit
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_corpus_shapes() {
        let doc = r#"{ "name": "x", "big": 2, "little": 0,
                      "tasks": [ { "weight_big": 3, "weight_little": 6, "replicable": true } ] }"#;
        let v = Json::parse(doc).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["name"].as_str(), Some("x"));
        assert_eq!(obj["big"].as_int(), Some(2));
        let tasks = obj["tasks"].as_arr().unwrap();
        assert_eq!(
            tasks[0].as_obj().unwrap()["replicable"].as_bool(),
            Some(true)
        );
    }

    #[test]
    fn render_parse_round_trip() {
        let doc = r#"{"a":[1,2,{"b":true,"s":"q\"\\\né"}],"empty_arr":[],"empty_obj":{},"n":null}"#;
        let v = Json::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Rendering is a fixpoint: canonical output re-renders identically.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn compact_render_is_single_line_and_round_trips() {
        let doc = "{\"a\":[1,2,{\"b\":true,\"s\":\"line\\nbreak\"}],\"e\":[],\"n\":null}";
        let v = Json::parse(doc).unwrap();
        let compact = v.render_compact();
        assert!(!compact.contains('\n'), "wire form must be one line");
        assert_eq!(compact, doc, "compact rendering is canonical");
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn rejects_what_the_format_never_contains() {
        for bad in [
            "1.5",
            "-3",
            "1e9",
            "01",
            "{\"a\":1,\"a\":2}",
            "[1,]",
            "[1 2]",
            "\"unterminated",
            "{} trailing",
            "",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn error_carries_an_offset() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
