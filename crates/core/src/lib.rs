//! # amp-core — scheduling partially-replicable task chains on two types of resources
//!
//! Rust implementation of the scheduling strategies from *"Scheduling
//! Strategies for Partially-Replicable Task Chains on Two Types of
//! Resources"* (Orhan et al., IPPS 2025): given a linear chain of tasks —
//! some stateless (replicable), some stateful (sequential) — and a
//! heterogeneous multicore processor with `b` big and `l` little cores,
//! find an interval mapping into pipeline stages, each assigned one or more
//! cores of a single type, that minimizes the pipeline period (maximizes
//! throughput) while using as many little cores as necessary (the power
//! proxy of the paper's secondary objective).
//!
//! ## Strategies
//!
//! * [`sched::Fertac`] — greedy, little-cores-first (Algorithm 4).
//! * [`sched::Twocatac`] — greedy, tries both core types per stage
//!   (Algorithms 5–6); worst-case exponential, near-optimal in practice.
//! * [`sched::Herad`] — optimal dynamic programming (Algorithms 7–11),
//!   optimal in period *and* in the big→little exchange tie-break.
//! * [`sched::Otac`] — the homogeneous-optimal baseline restricted to one
//!   core type (`OTAC (B)` / `OTAC (L)` in the paper's evaluation).
//!
//! ## Quickstart
//!
//! ```
//! use amp_core::{Task, TaskChain, Resources, sched::{Herad, Scheduler}};
//!
//! // A chain of four tasks: weights on (big, little) cores, replicable?
//! let chain = TaskChain::new(vec![
//!     Task::new(10, 25, false), // stateful source
//!     Task::new(40, 90, true),  // heavy stateless filter
//!     Task::new(40, 95, true),  // heavy stateless decoder
//!     Task::new(5, 12, false),  // stateful sink
//! ]);
//! let solution = Herad::new()
//!     .schedule(&chain, Resources::new(2, 2))
//!     .expect("at least one core");
//! println!("decomposition: {solution}");
//! println!("period: {}", solution.period(&chain));
//! assert!(solution.validate(&chain).is_ok());
//! ```

pub mod chain;
pub mod json;
pub mod power;
pub mod ratio;
pub mod resources;
pub mod sched;
pub mod solution;

pub use chain::{Task, TaskChain};
pub use power::{milliwatts_to_watts, watts_to_milliwatts, MilliPower, PowerModel};
pub use ratio::Ratio;
pub use resources::{CoreType, Resources};
pub use solution::{period_of, stages_are_valid, used_cores_of, Solution, Stage, ValidationError};
