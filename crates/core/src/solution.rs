//! Pipelined and replicated solutions `S = (s, r, v)`.

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::{CoreType, Resources};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One pipeline stage: a contiguous interval of tasks mapped to `cores`
/// cores of one type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stage {
    /// 0-based index of the first task of the stage.
    pub start: usize,
    /// 0-based index of the last task of the stage (inclusive).
    pub end: usize,
    /// Number of cores assigned (`r_i`); > 1 only for replicable stages.
    pub cores: u64,
    /// Core type (`v_i`).
    pub core_type: CoreType,
}

impl Stage {
    /// Builds a stage covering tasks `[start, end]`.
    #[must_use]
    pub fn new(start: usize, end: usize, cores: u64, core_type: CoreType) -> Self {
        debug_assert!(start <= end);
        Stage {
            start,
            end,
            cores,
            core_type,
        }
    }

    /// Number of tasks in the stage.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.end - self.start + 1
    }

    /// Weight of the stage on its assigned resources (Eq. (1)).
    #[must_use]
    pub fn weight(&self, chain: &TaskChain) -> Ratio {
        chain.stage_weight(self.start, self.end, self.cores, self.core_type)
    }
}

/// A structural violation reported by [`Solution::validate`].
///
/// The `Display` output keeps the exact phrasing of the former
/// `Result<(), String>` API; [`ValidationError::code`] gives a stable
/// machine-readable identifier for service error mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationError {
    /// The solution has no stages at all.
    Empty,
    /// Stage `stage` does not start right after its predecessor ends.
    NonContiguous {
        /// Index of the offending stage.
        stage: usize,
        /// First task of the offending stage.
        found: usize,
        /// Expected first task (end of the previous stage + 1).
        expected: usize,
    },
    /// Stage `stage` ends before it starts or beyond the chain.
    InvalidEnd {
        /// Index of the offending stage.
        stage: usize,
        /// The out-of-range end index.
        end: usize,
    },
    /// Stage `stage` was assigned zero cores.
    ZeroCores {
        /// Index of the offending stage.
        stage: usize,
    },
    /// Stage `stage` replicates an interval containing a sequential task.
    ReplicatedSequential {
        /// Index of the offending stage.
        stage: usize,
        /// First task of the offending stage.
        start: usize,
        /// Last task of the offending stage.
        end: usize,
    },
    /// The stages stop before the end of the chain.
    IncompleteCover {
        /// Number of tasks covered by the stages.
        covered: usize,
        /// Chain length.
        total: usize,
    },
}

impl ValidationError {
    /// Stable machine-readable code (used by `amp-service` error mapping).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ValidationError::Empty => "EMPTY_SOLUTION",
            ValidationError::NonContiguous { .. } => "NON_CONTIGUOUS_STAGES",
            ValidationError::InvalidEnd { .. } => "INVALID_STAGE_END",
            ValidationError::ZeroCores { .. } => "ZERO_CORE_STAGE",
            ValidationError::ReplicatedSequential { .. } => "REPLICATED_SEQUENTIAL_STAGE",
            ValidationError::IncompleteCover { .. } => "INCOMPLETE_COVER",
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidationError::Empty => write!(f, "solution has no stages"),
            ValidationError::NonContiguous {
                stage,
                found,
                expected,
            } => write!(
                f,
                "stage {stage} starts at task {found} but task {expected} expected"
            ),
            ValidationError::InvalidEnd { stage, end } => {
                write!(f, "stage {stage} has invalid end {end}")
            }
            ValidationError::ZeroCores { stage } => write!(f, "stage {stage} has zero cores"),
            ValidationError::ReplicatedSequential { stage, start, end } => write!(
                f,
                "stage {stage} replicates a sequential interval [{start}..{end}]"
            ),
            ValidationError::IncompleteCover { covered, total } => {
                write!(f, "stages cover only {covered} of {total} tasks")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// The period of a stage slice (Eq. (2)): the largest stage weight, or
/// infinity for an empty slice. Slice-level twin of [`Solution::period`]
/// for hot paths that work on rented buffers instead of [`Solution`]s.
#[must_use]
pub fn period_of(chain: &TaskChain, stages: &[Stage]) -> Ratio {
    stages
        .iter()
        .map(|s| s.weight(chain))
        .max()
        .unwrap_or(Ratio::INFINITY)
}

/// Cores used per type by a stage slice. Slice-level twin of
/// [`Solution::used_cores`].
#[must_use]
pub fn used_cores_of(stages: &[Stage]) -> Resources {
    let mut used = Resources::new(0, 0);
    for s in stages {
        match s.core_type {
            CoreType::Big => used.big += s.cores,
            CoreType::Little => used.little += s.cores,
        }
    }
    used
}

/// `IsValid` (Algorithm 3) over a stage slice: non-empty, period within
/// `target`, resource constraints of Eq. (3). Slice-level twin of
/// [`Solution::is_valid`].
#[must_use]
pub fn stages_are_valid(
    chain: &TaskChain,
    resources: Resources,
    target: Ratio,
    stages: &[Stage],
) -> bool {
    if stages.is_empty() {
        return false;
    }
    let used = used_cores_of(stages);
    used.big <= resources.big
        && used.little <= resources.little
        && period_of(chain, stages) <= target
}

/// A complete pipelined/replicated mapping of a task chain.
///
/// Invariants (checked by [`Solution::validate`]): stages are contiguous,
/// cover `0..n`, every stage has at least one core, and stages with more
/// than one core are replicable.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    stages: Vec<Stage>,
}

impl Solution {
    /// Builds a solution from stages; no checking (see [`Solution::validate`]).
    #[must_use]
    pub fn new(stages: Vec<Stage>) -> Self {
        Solution { stages }
    }

    /// The empty (invalid) solution `(∅, ∅, ∅)`.
    #[must_use]
    pub fn empty() -> Self {
        Solution { stages: Vec::new() }
    }

    /// The stages, in chain order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Mutable access to the stage vector for hot paths that fill a
    /// reused `Solution` in place. Like [`Solution::new`], no invariant
    /// is checked (see [`Solution::validate`]).
    pub fn stages_mut(&mut self) -> &mut Vec<Stage> {
        &mut self.stages
    }

    /// Number of stages `|s|`.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Whether the solution has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Prepends a stage (the `·` concatenation of Algorithms 4 and 5).
    pub fn prepend(&mut self, stage: Stage) {
        self.stages.insert(0, stage);
    }

    /// The period `P(s, r, v)` (Eq. (2)): the largest stage weight. The empty
    /// solution has an infinite period.
    #[must_use]
    pub fn period(&self, chain: &TaskChain) -> Ratio {
        period_of(chain, &self.stages)
    }

    /// Steady-state throughput in frames per time unit (`1 / P`).
    #[must_use]
    pub fn throughput(&self, chain: &TaskChain) -> f64 {
        let p = self.period(chain);
        if p.is_infinite() || p.is_zero() {
            0.0
        } else {
            p.denom() as f64 / p.numer() as f64
        }
    }

    /// Cores used per type `(Σ_{v_i=B} r_i, Σ_{v_i=L} r_i)`.
    #[must_use]
    pub fn used_cores(&self) -> Resources {
        used_cores_of(&self.stages)
    }

    /// `IsValid` (Algorithm 3): non-empty, period within `target`, and the
    /// resource constraints of Eq. (3).
    #[must_use]
    pub fn is_valid(&self, chain: &TaskChain, resources: Resources, target: Ratio) -> bool {
        stages_are_valid(chain, resources, target, &self.stages)
    }

    /// Full structural check: contiguous coverage of the whole chain,
    /// positive core counts, and no replication of sequential stages.
    /// Returns the first violation as a typed [`ValidationError`], if any.
    ///
    /// # Errors
    /// Returns the first structural violation encountered, in stage order.
    pub fn validate(&self, chain: &TaskChain) -> Result<(), ValidationError> {
        if self.stages.is_empty() {
            return Err(ValidationError::Empty);
        }
        let mut expected_start = 0usize;
        for (i, s) in self.stages.iter().enumerate() {
            if s.start != expected_start {
                return Err(ValidationError::NonContiguous {
                    stage: i,
                    found: s.start,
                    expected: expected_start,
                });
            }
            if s.end < s.start || s.end >= chain.len() {
                return Err(ValidationError::InvalidEnd {
                    stage: i,
                    end: s.end,
                });
            }
            if s.cores == 0 {
                return Err(ValidationError::ZeroCores { stage: i });
            }
            if s.cores > 1 && !chain.is_replicable(s.start, s.end) {
                return Err(ValidationError::ReplicatedSequential {
                    stage: i,
                    start: s.start,
                    end: s.end,
                });
            }
            expected_start = s.end + 1;
        }
        if expected_start != chain.len() {
            return Err(ValidationError::IncompleteCover {
                covered: expected_start,
                total: chain.len(),
            });
        }
        Ok(())
    }

    /// Merges consecutive replicable stages that use the same core type
    /// (HeRAD's post-processing step). Never increases the period: the
    /// merged weight is the mediant of the originals, which lies between
    /// them.
    #[must_use]
    pub fn merged_replicable_stages(&self, chain: &TaskChain) -> Solution {
        let mut merged = self.clone();
        merged.merge_replicable_stages_in_place(chain);
        merged
    }

    /// In-place, allocation-free form of
    /// [`Solution::merged_replicable_stages`]: compacts the stage vector
    /// with a read/write cursor pair instead of building a new one.
    pub fn merge_replicable_stages_in_place(&mut self, chain: &TaskChain) {
        let stages = &mut self.stages;
        if stages.is_empty() {
            return;
        }
        let mut w = 0;
        for r in 1..stages.len() {
            let s = stages[r];
            let prev = &mut stages[w];
            if prev.core_type == s.core_type
                && chain.is_replicable(prev.start, prev.end)
                && chain.is_replicable(s.start, s.end)
            {
                prev.end = s.end;
                prev.cores += s.cores;
            } else {
                w += 1;
                stages[w] = s;
            }
        }
        stages.truncate(w + 1);
    }

    /// The paper's compact decomposition notation, e.g. `(5,1B),(4,5B),(4,1L)`
    /// (task count and replication per stage, as in Table II).
    #[must_use]
    pub fn decomposition(&self) -> String {
        self.stages
            .iter()
            .map(|s| format!("({},{}{})", s.num_tasks(), s.cores, s.core_type.letter()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stages.is_empty() {
            write!(f, "(empty)")
        } else {
            write!(f, "{}", self.decomposition())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(2, 6, true),
            Task::new(3, 9, true),
            Task::new(5, 10, false),
            Task::new(1, 2, true),
        ])
    }

    fn solution() -> Solution {
        Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 2, 2, CoreType::Little),
            Stage::new(3, 4, 1, CoreType::Big),
        ])
    }

    #[test]
    fn period_is_max_stage_weight() {
        let c = chain();
        let s = solution();
        // stage weights: 4, 15/2, 6 -> period 15/2
        assert_eq!(s.period(&c), Ratio::new(15, 2));
        assert!((s.throughput(&c) - 2.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn used_cores_by_type() {
        assert_eq!(solution().used_cores(), Resources::new(2, 2));
    }

    #[test]
    fn validity_checks_resources_and_period() {
        let c = chain();
        let s = solution();
        assert!(s.is_valid(&c, Resources::new(2, 2), Ratio::new(15, 2)));
        assert!(!s.is_valid(&c, Resources::new(1, 2), Ratio::new(15, 2)));
        assert!(!s.is_valid(&c, Resources::new(2, 2), Ratio::from_int(7)));
        assert!(!Solution::empty().is_valid(&c, Resources::new(9, 9), Ratio::INFINITY));
    }

    #[test]
    fn validate_rejects_gaps_overlaps_and_bad_replication() {
        let c = chain();
        assert!(solution().validate(&c).is_ok());
        // gap: second stage starts at 2
        let bad = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(2, 4, 1, CoreType::Big),
        ]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::NonContiguous {
                stage: 1,
                found: 2,
                expected: 1
            })
        );
        // missing tail
        let bad = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::IncompleteCover {
                covered: 3,
                total: 5
            })
        );
        // replicated sequential stage
        let bad = Solution::new(vec![
            Stage::new(0, 2, 2, CoreType::Big),
            Stage::new(3, 4, 1, CoreType::Big),
        ]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::ReplicatedSequential {
                stage: 0,
                start: 0,
                end: 2
            })
        );
        // zero cores
        let bad = Solution::new(vec![Stage::new(0, 4, 0, CoreType::Big)]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::ZeroCores { stage: 0 })
        );
        assert_eq!(Solution::empty().validate(&c), Err(ValidationError::Empty));
    }

    #[test]
    fn validate_rejects_out_of_range_and_inverted_stage_ends() {
        let c = chain();
        // end beyond the chain (e.g. a stale solution applied to a
        // shorter chain, or a malformed deserialized stage).
        let bad = Solution::new(vec![Stage::new(0, 5, 1, CoreType::Big)]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::InvalidEnd { stage: 0, end: 5 })
        );
        // end before start: build the struct literally — `Stage::new`
        // debug-asserts the ordering, but deserialized stages bypass it
        // and `validate` must still reject them.
        let inverted = Stage {
            start: 1,
            end: 0,
            cores: 1,
            core_type: CoreType::Little,
        };
        let bad = Solution::new(vec![Stage::new(0, 0, 1, CoreType::Big), inverted]);
        assert_eq!(
            bad.validate(&c),
            Err(ValidationError::InvalidEnd { stage: 1, end: 0 })
        );
        // The error carries the stable code and phrasing of the variant.
        let err = bad.validate(&c).unwrap_err();
        assert_eq!(err.code(), "INVALID_STAGE_END");
        assert_eq!(err.to_string(), "stage 1 has invalid end 0");
    }

    #[test]
    fn validation_errors_keep_legacy_phrasing_and_stable_codes() {
        // Display output stays compatible with the old `Result<(), String>`
        // API so log scrapes and error-message assertions keep working.
        let cases = [
            (
                ValidationError::Empty,
                "solution has no stages",
                "EMPTY_SOLUTION",
            ),
            (
                ValidationError::NonContiguous {
                    stage: 1,
                    found: 2,
                    expected: 1,
                },
                "stage 1 starts at task 2 but task 1 expected",
                "NON_CONTIGUOUS_STAGES",
            ),
            (
                ValidationError::InvalidEnd { stage: 0, end: 9 },
                "stage 0 has invalid end 9",
                "INVALID_STAGE_END",
            ),
            (
                ValidationError::ZeroCores { stage: 2 },
                "stage 2 has zero cores",
                "ZERO_CORE_STAGE",
            ),
            (
                ValidationError::ReplicatedSequential {
                    stage: 0,
                    start: 0,
                    end: 2,
                },
                "stage 0 replicates a sequential interval [0..2]",
                "REPLICATED_SEQUENTIAL_STAGE",
            ),
            (
                ValidationError::IncompleteCover {
                    covered: 3,
                    total: 5,
                },
                "stages cover only 3 of 5 tasks",
                "INCOMPLETE_COVER",
            ),
        ];
        for (err, text, code) in cases {
            assert_eq!(err.to_string(), text);
            assert_eq!(err.code(), code);
        }
    }

    #[test]
    fn merge_joins_consecutive_replicable_same_type() {
        let c = TaskChain::new(vec![
            Task::new(4, 8, true),
            Task::new(2, 6, true),
            Task::new(3, 9, true),
        ]);
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Little),
        ]);
        let m = s.merged_replicable_stages(&c);
        assert_eq!(m.num_stages(), 2);
        assert_eq!(m.stages()[0], Stage::new(0, 1, 3, CoreType::Big));
        // merging never increases the period
        assert!(m.period(&c) <= s.period(&c));
        assert!(m.validate(&c).is_ok());
    }

    #[test]
    fn merge_keeps_sequential_and_cross_type_boundaries() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 1, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Little),
            Stage::new(3, 4, 1, CoreType::Little),
        ]);
        let m = s.merged_replicable_stages(&c);
        // [1,1] is replicable but [0,0] is sequential; [2,2] and [3,4] use
        // the same type but [3,4] is sequential -> nothing merges.
        assert_eq!(m.num_stages(), 4);
    }

    #[test]
    fn decomposition_matches_paper_format() {
        assert_eq!(solution().decomposition(), "(1,1B),(2,2L),(2,1B)");
        assert_eq!(Solution::empty().to_string(), "(empty)");
    }

    #[test]
    fn slice_helpers_match_solution_methods() {
        let c = chain();
        let s = solution();
        assert_eq!(period_of(&c, s.stages()), s.period(&c));
        assert_eq!(used_cores_of(s.stages()), s.used_cores());
        assert!(stages_are_valid(
            &c,
            Resources::new(2, 2),
            Ratio::new(15, 2),
            s.stages()
        ));
        assert!(!stages_are_valid(
            &c,
            Resources::new(1, 2),
            Ratio::new(15, 2),
            s.stages()
        ));
        assert_eq!(period_of(&c, &[]), Ratio::INFINITY);
        assert!(!stages_are_valid(
            &c,
            Resources::new(9, 9),
            Ratio::INFINITY,
            &[]
        ));
    }

    #[test]
    fn in_place_merge_matches_out_of_place() {
        let c = TaskChain::new(vec![
            Task::new(4, 8, true),
            Task::new(2, 6, true),
            Task::new(3, 9, false),
            Task::new(1, 2, true),
            Task::new(1, 2, true),
        ]);
        let cases = [
            Solution::new(vec![
                Stage::new(0, 0, 1, CoreType::Big),
                Stage::new(1, 1, 2, CoreType::Big),
                Stage::new(2, 2, 1, CoreType::Little),
                Stage::new(3, 3, 1, CoreType::Little),
                Stage::new(4, 4, 3, CoreType::Little),
            ]),
            Solution::new(vec![Stage::new(0, 4, 1, CoreType::Big)]),
            Solution::empty(),
        ];
        for s in cases {
            let mut in_place = s.clone();
            in_place.merge_replicable_stages_in_place(&c);
            assert_eq!(in_place, s.merged_replicable_stages(&c));
        }
    }

    #[test]
    fn prepend_builds_in_chain_order() {
        let mut s = Solution::empty();
        s.prepend(Stage::new(3, 4, 1, CoreType::Big));
        s.prepend(Stage::new(0, 2, 1, CoreType::Little));
        assert_eq!(s.stages()[0].start, 0);
        assert_eq!(s.stages()[1].start, 3);
    }
}
