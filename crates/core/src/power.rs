//! Power estimation for schedules — quantifying the paper's secondary
//! objective.
//!
//! The paper uses "as many little cores as necessary" as a proxy for power
//! because per-task power measurements were unavailable; it lists direct
//! power models as future work. This module provides the simplest such
//! model — a fixed power draw per active core of each type — so that the
//! big→little exchange preference can be evaluated in watts and schedules
//! compared on a period/power Pareto front.

use crate::chain::TaskChain;
use crate::resources::CoreType;
use crate::solution::Solution;
use serde::{Deserialize, Serialize};

/// Fixed power draw per active core, by type.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts drawn by one busy big core.
    pub big_watts: f64,
    /// Watts drawn by one busy little core.
    pub little_watts: f64,
    /// Watts drawn by an idle-but-reserved core, as a fraction of busy
    /// draw (cores assigned to a stage idle whenever the stage is not the
    /// bottleneck).
    pub idle_fraction: f64,
}

impl PowerModel {
    /// A ratio typical of published big.LITTLE measurements: big cores
    /// draw ~4x a little core at full tilt, idling at 20%.
    #[must_use]
    pub fn typical() -> Self {
        PowerModel {
            big_watts: 4.0,
            little_watts: 1.0,
            idle_fraction: 0.2,
        }
    }

    /// Power if every assigned core were busy full-time (the upper bound,
    /// and the model implied by the paper's core-counting proxy).
    #[must_use]
    pub fn peak_power(&self, solution: &Solution) -> f64 {
        let used = solution.used_cores();
        used.big as f64 * self.big_watts + used.little as f64 * self.little_watts
    }

    /// Expected steady-state power: each stage's cores are busy for its
    /// weight out of every period, idle (at `idle_fraction`) otherwise.
    #[must_use]
    pub fn steady_power(&self, chain: &TaskChain, solution: &Solution) -> f64 {
        let period = solution.period(chain);
        if period.is_infinite() || period.is_zero() {
            return 0.0;
        }
        let p = period.to_f64();
        solution
            .stages()
            .iter()
            .map(|s| {
                let busy = s.weight(chain).to_f64() / p; // utilization in [0, 1]
                let per_core = match s.core_type {
                    CoreType::Big => self.big_watts,
                    CoreType::Little => self.little_watts,
                };
                s.cores as f64 * per_core * (busy + (1.0 - busy) * self.idle_fraction)
            })
            .sum()
    }

    /// Energy per frame in joules (steady power × period, with the period
    /// in seconds given `unit_seconds` per weight unit).
    #[must_use]
    pub fn energy_per_frame(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        unit_seconds: f64,
    ) -> f64 {
        self.steady_power(chain, solution) * solution.period(chain).to_f64() * unit_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::resources::Resources;
    use crate::sched::{Herad, Otac, Scheduler};
    use crate::solution::Stage;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(6, 12, true),
            Task::new(2, 4, false),
        ])
    }

    #[test]
    fn peak_power_counts_cores_by_type() {
        let m = PowerModel::typical();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Little),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        assert!((m.peak_power(&s) - (2.0 * 4.0 + 2.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn steady_power_is_below_peak_and_above_idle() {
        let c = chain();
        let m = PowerModel::typical();
        let s = Herad::new().schedule(&c, Resources::new(2, 2)).unwrap();
        let peak = m.peak_power(&s);
        let steady = m.steady_power(&c, &s);
        let idle = peak * m.idle_fraction;
        assert!(steady <= peak + 1e-12, "steady {steady} peak {peak}");
        assert!(steady >= idle - 1e-12, "steady {steady} idle floor {idle}");
    }

    #[test]
    fn bottleneck_stage_contributes_full_power() {
        // Single-stage solution: utilization 1 -> steady == peak.
        let c = chain();
        let m = PowerModel::typical();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        assert!((m.steady_power(&c, &s) - m.peak_power(&s)).abs() < 1e-9);
    }

    #[test]
    fn little_heavy_schedules_draw_less_peak_power() {
        // The paper's secondary objective in watts: when big and little
        // cores give the same period, HeRAD's tie-break toward little cores
        // draws less peak power than the big-only baseline.
        let c = TaskChain::new(vec![Task::new(10, 10, false)]);
        let r = Resources::new(1, 1);
        let m = PowerModel::typical();
        let herad = Herad::new().schedule(&c, r).unwrap();
        let otac_b = Otac::big().schedule(&c, r).unwrap();
        assert_eq!(herad.period(&c), otac_b.period(&c));
        assert!(m.peak_power(&herad) < m.peak_power(&otac_b));
    }

    #[test]
    fn energy_per_frame_scales_with_period() {
        let c = chain();
        let m = PowerModel::typical();
        let fast = Herad::new().schedule(&c, Resources::new(3, 3)).unwrap();
        let slow = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Little)]);
        // Energy/frame of the single-little-core schedule equals its full
        // busy draw times its (long) period.
        let e_slow = m.energy_per_frame(&c, &slow, 1e-6);
        assert!((e_slow - 1.0 * 24.0 * 1e-6).abs() < 1e-12);
        assert!(m.energy_per_frame(&c, &fast, 1e-6) > 0.0);
    }

    #[test]
    fn empty_solution_draws_nothing() {
        let c = chain();
        let m = PowerModel::typical();
        assert_eq!(m.steady_power(&c, &Solution::empty()), 0.0);
    }
}
