//! Power estimation for schedules — quantifying the paper's secondary
//! objective.
//!
//! The paper uses "as many little cores as necessary" as a proxy for power
//! because per-task power measurements were unavailable; it lists direct
//! power models as future work. This module provides the simplest such
//! model — a fixed power draw per active core of each type — so that the
//! big→little exchange preference can be evaluated in watts and schedules
//! compared on a period/power Pareto front.
//!
//! Two representations coexist:
//!
//! * [`PowerModel`] — the float-valued model used for reporting and for
//!   the experiments drivers (watts are natural units there);
//! * [`MilliPower`] — the integer-milliwatt quantization used everywhere
//!   energy is *optimized* or put *on the wire*: per-core draw in whole
//!   milliwatts and the idle fraction in per-mille. With integer inputs
//!   every stage power is an exact [`Ratio`] in milliwatt units, so the
//!   energy-aware schedulers (see [`crate::sched::energy`]) compare
//!   candidates exactly — no float ties, no NaN — and the service wire
//!   carries integers only (floats stay banned on the wire).

use crate::chain::TaskChain;
use crate::ratio::Ratio;
use crate::resources::CoreType;
use crate::solution::{Solution, Stage};
use serde::{Deserialize, Serialize};

/// Fixed power draw per active core, by type.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts drawn by one busy big core.
    pub big_watts: f64,
    /// Watts drawn by one busy little core.
    pub little_watts: f64,
    /// Watts drawn by an idle-but-reserved core, as a fraction of busy
    /// draw (cores assigned to a stage idle whenever the stage is not the
    /// bottleneck).
    pub idle_fraction: f64,
}

impl PowerModel {
    /// A ratio typical of published big.LITTLE measurements: big cores
    /// draw ~4x a little core at full tilt, idling at 20%.
    #[must_use]
    pub fn typical() -> Self {
        PowerModel {
            big_watts: 4.0,
            little_watts: 1.0,
            idle_fraction: 0.2,
        }
    }

    /// Power if every assigned core were busy full-time (the upper bound,
    /// and the model implied by the paper's core-counting proxy).
    #[must_use]
    pub fn peak_power(&self, solution: &Solution) -> f64 {
        let used = solution.used_cores();
        used.big as f64 * self.big_watts + used.little as f64 * self.little_watts
    }

    /// Expected steady-state power: each stage's cores are busy for its
    /// weight out of every period, idle (at `idle_fraction`) otherwise.
    #[must_use]
    pub fn steady_power(&self, chain: &TaskChain, solution: &Solution) -> f64 {
        self.steady_power_at(chain, solution, solution.period(chain))
    }

    /// Steady-state power when the pipeline is *operated* at `period`
    /// (one frame admitted every `period` units). The solution must be
    /// able to keep up (`solution.period(chain) <= period`) for the
    /// utilizations to stay in `[0, 1]`; a slower operating point means
    /// every stage idles more and draws less.
    ///
    /// Degenerate operating points — infinite (pipeline stopped) or zero
    /// period — draw nothing by convention and never produce NaN.
    #[must_use]
    pub fn steady_power_at(&self, chain: &TaskChain, solution: &Solution, period: Ratio) -> f64 {
        if period.is_infinite() || period.is_zero() {
            return 0.0;
        }
        let p = period.to_f64();
        solution
            .stages()
            .iter()
            .map(|s| {
                let busy = s.weight(chain).to_f64() / p; // utilization in [0, 1]
                let per_core = match s.core_type {
                    CoreType::Big => self.big_watts,
                    CoreType::Little => self.little_watts,
                };
                s.cores as f64 * per_core * (busy + (1.0 - busy) * self.idle_fraction)
            })
            .sum()
    }

    /// Energy per frame in joules (steady power × period, with the period
    /// in seconds given `unit_seconds` per weight unit).
    ///
    /// An infinite or zero period yields zero energy — the pipeline is
    /// not producing frames. (Without the early return this would be
    /// `0.0 × ∞ = NaN`.)
    #[must_use]
    pub fn energy_per_frame(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        unit_seconds: f64,
    ) -> f64 {
        let period = solution.period(chain);
        if period.is_infinite() || period.is_zero() {
            return 0.0;
        }
        self.steady_power(chain, solution) * period.to_f64() * unit_seconds
    }

    /// Quantizes this model to integer milliwatts (idle fraction in
    /// per-mille). Negative or non-finite draws clamp to zero and the
    /// idle fraction clamps into `[0, 1]`, so the result is always a
    /// well-formed integer model.
    #[must_use]
    pub fn to_milli(&self) -> MilliPower {
        MilliPower::new(
            watts_to_milliwatts(self.big_watts),
            watts_to_milliwatts(self.little_watts),
            watts_to_milliwatts(self.idle_fraction.clamp(0.0, 1.0)) as u32,
        )
    }
}

/// Converts watts to whole milliwatts, rounding to nearest. Negative and
/// non-finite inputs map to 0 — the wire never carries a nonsense draw.
#[must_use]
pub fn watts_to_milliwatts(watts: f64) -> u64 {
    if !watts.is_finite() || watts <= 0.0 {
        return 0;
    }
    let mw = (watts * 1000.0).round();
    if mw >= u64::MAX as f64 {
        u64::MAX
    } else {
        mw as u64
    }
}

/// Converts whole milliwatts back to watts. Exact for every count below
/// 2^53 (f64 integer range), so `watts_to_milliwatts` round-trips.
#[must_use]
pub fn milliwatts_to_watts(milliwatts: u64) -> f64 {
    milliwatts as f64 / 1000.0
}

/// Integer-milliwatt power model: the exact-arithmetic twin of
/// [`PowerModel`]. Per-core draws are whole milliwatts and the idle
/// fraction is per-mille, so every power figure derived from it is an
/// exact rational in milliwatt units.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MilliPower {
    /// Milliwatts drawn by one busy big core.
    pub big_mw: u64,
    /// Milliwatts drawn by one busy little core.
    pub little_mw: u64,
    /// Idle draw as per-mille of busy draw, in `[0, 1000]`.
    pub idle_millis: u32,
}

impl MilliPower {
    /// Builds a model, clamping the idle per-mille into `[0, 1000]`.
    #[must_use]
    pub fn new(big_mw: u64, little_mw: u64, idle_millis: u32) -> Self {
        MilliPower {
            big_mw,
            little_mw,
            idle_millis: idle_millis.min(1000),
        }
    }

    /// The integer twin of [`PowerModel::typical`]: 4000 mW big,
    /// 1000 mW little, 20% idle draw.
    #[must_use]
    pub fn typical() -> Self {
        MilliPower::new(4000, 1000, 200)
    }

    /// Converts back to the float model (exact: see
    /// [`milliwatts_to_watts`]).
    #[must_use]
    pub fn to_watts(&self) -> PowerModel {
        PowerModel {
            big_watts: milliwatts_to_watts(self.big_mw),
            little_watts: milliwatts_to_watts(self.little_mw),
            idle_fraction: self.idle_millis as f64 / 1000.0,
        }
    }

    /// Busy draw of one core of `v`, in milliwatts.
    #[must_use]
    pub fn per_core_mw(&self, v: CoreType) -> u64 {
        match v {
            CoreType::Big => self.big_mw,
            CoreType::Little => self.little_mw,
        }
    }

    /// Exact steady-state power of one stage in milliwatts when the
    /// pipeline is operated at `period`: `r·m·(f + (1−f)·i)` with busy
    /// fraction `f = w/period` and idle fraction `i` in per-mille —
    /// the integer-exact form of the float model's per-stage term.
    ///
    /// Degenerate operating points (infinite/zero period) draw nothing,
    /// matching [`PowerModel::steady_power_at`]; a stage whose weight is
    /// infinite (zero cores) draws infinite power so it can never win an
    /// energy comparison.
    #[must_use]
    pub fn stage_power_mw(&self, chain: &TaskChain, stage: &Stage, period: Ratio) -> Ratio {
        if period.is_infinite() || period.is_zero() {
            return Ratio::ZERO;
        }
        let w = stage.weight(chain);
        if w.is_infinite() {
            return Ratio::INFINITY;
        }
        let m = self.per_core_mw(stage.core_type) as u128;
        let r = stage.cores as u128;
        let i = self.idle_millis as u128;
        let (wn, wd) = (w.numer(), w.denom());
        let (tn, td) = (period.numer(), period.denom());
        // m·r·(i/1000 + (1000−i)/1000 · wn·td/(wd·tn))
        //   = m·r·(i·wd·tn + (1000−i)·wn·td) / (1000·wd·tn)
        Ratio::new(m * r * (i * wd * tn + (1000 - i) * wn * td), 1000 * wd * tn)
    }

    /// Exact steady-state power of a whole solution in milliwatts at
    /// operating `period` — the integer-exact twin of
    /// [`PowerModel::steady_power_at`].
    #[must_use]
    pub fn solution_power_mw(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        period: Ratio,
    ) -> Ratio {
        solution.stages().iter().fold(Ratio::ZERO, |acc, s| {
            ratio_add(acc, self.stage_power_mw(chain, s, period))
        })
    }

    /// [`Self::solution_power_mw`] rounded to the nearest whole milliwatt
    /// — the integer the wire and status endpoints carry. Infinite power
    /// saturates to `u64::MAX`.
    #[must_use]
    pub fn solution_power_milliwatts(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        period: Ratio,
    ) -> u64 {
        round_mw(self.solution_power_mw(chain, solution, period))
    }
}

/// Exact sum of two ratios, propagating infinity. `Ratio` itself only
/// carries the comparisons schedulers need; energy accumulation is the
/// one place the library adds fractions, so the helper lives here.
#[must_use]
pub(crate) fn ratio_add(a: Ratio, b: Ratio) -> Ratio {
    if a.is_infinite() || b.is_infinite() {
        return Ratio::INFINITY;
    }
    Ratio::new(
        a.numer() * b.denom() + b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

/// Rounds an exact milliwatt figure to the nearest integer milliwatt
/// (half away from zero). Infinity saturates to `u64::MAX`.
#[must_use]
pub(crate) fn round_mw(power: Ratio) -> u64 {
    if power.is_infinite() {
        return u64::MAX;
    }
    let rounded = (2 * power.numer() + power.denom()) / (2 * power.denom());
    u64::try_from(rounded).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Task;
    use crate::resources::Resources;
    use crate::sched::{Herad, Otac, Scheduler};
    use crate::solution::Stage;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(6, 12, true),
            Task::new(2, 4, false),
        ])
    }

    #[test]
    fn peak_power_counts_cores_by_type() {
        let m = PowerModel::typical();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Little),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        assert!((m.peak_power(&s) - (2.0 * 4.0 + 2.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn steady_power_is_below_peak_and_above_idle() {
        let c = chain();
        let m = PowerModel::typical();
        let s = Herad::new().schedule(&c, Resources::new(2, 2)).unwrap();
        let peak = m.peak_power(&s);
        let steady = m.steady_power(&c, &s);
        let idle = peak * m.idle_fraction;
        assert!(steady <= peak + 1e-12, "steady {steady} peak {peak}");
        assert!(steady >= idle - 1e-12, "steady {steady} idle floor {idle}");
    }

    #[test]
    fn bottleneck_stage_contributes_full_power() {
        // Single-stage solution: utilization 1 -> steady == peak.
        let c = chain();
        let m = PowerModel::typical();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        assert!((m.steady_power(&c, &s) - m.peak_power(&s)).abs() < 1e-9);
    }

    #[test]
    fn little_heavy_schedules_draw_less_peak_power() {
        // The paper's secondary objective in watts: when big and little
        // cores give the same period, HeRAD's tie-break toward little cores
        // draws less peak power than the big-only baseline.
        let c = TaskChain::new(vec![Task::new(10, 10, false)]);
        let r = Resources::new(1, 1);
        let m = PowerModel::typical();
        let herad = Herad::new().schedule(&c, r).unwrap();
        let otac_b = Otac::big().schedule(&c, r).unwrap();
        assert_eq!(herad.period(&c), otac_b.period(&c));
        assert!(m.peak_power(&herad) < m.peak_power(&otac_b));
    }

    #[test]
    fn energy_per_frame_scales_with_period() {
        let c = chain();
        let m = PowerModel::typical();
        let fast = Herad::new().schedule(&c, Resources::new(3, 3)).unwrap();
        let slow = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Little)]);
        // Energy/frame of the single-little-core schedule equals its full
        // busy draw times its (long) period.
        let e_slow = m.energy_per_frame(&c, &slow, 1e-6);
        assert!((e_slow - 1.0 * 24.0 * 1e-6).abs() < 1e-12);
        assert!(m.energy_per_frame(&c, &fast, 1e-6) > 0.0);
    }

    #[test]
    fn empty_solution_draws_nothing() {
        let c = chain();
        let m = PowerModel::typical();
        assert_eq!(m.steady_power(&c, &Solution::empty()), 0.0);
        assert_eq!(
            MilliPower::typical().solution_power_mw(&c, &Solution::empty(), Ratio::from_int(10)),
            Ratio::ZERO
        );
    }

    #[test]
    fn infinite_period_draws_nothing_and_never_nans() {
        // A zero-core stage has infinite weight, hence an infinite period:
        // the pipeline is stopped. Power and energy are zero by
        // convention — in particular energy_per_frame must not compute
        // 0.0 × ∞ = NaN (the regression this test pins).
        let c = chain();
        let m = PowerModel::typical();
        let stopped = Solution::new(vec![Stage::new(0, 2, 0, CoreType::Big)]);
        assert!(stopped.period(&c).is_infinite());
        assert_eq!(m.steady_power(&c, &stopped), 0.0);
        let e = m.energy_per_frame(&c, &stopped, 1e-6);
        assert!(!e.is_nan(), "energy_per_frame produced NaN");
        assert_eq!(e, 0.0);
    }

    #[test]
    fn zero_period_operating_point_draws_nothing() {
        let c = chain();
        let m = PowerModel::typical();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        assert_eq!(m.steady_power_at(&c, &s, Ratio::ZERO), 0.0);
        assert_eq!(
            MilliPower::typical().solution_power_mw(&c, &s, Ratio::ZERO),
            Ratio::ZERO
        );
    }

    #[test]
    fn idle_fraction_zero_counts_only_busy_time() {
        let c = chain();
        let mut m = PowerModel::typical();
        m.idle_fraction = 0.0;
        // Two stages on one big core each; the slower bounds the period.
        let s = Solution::new(vec![
            Stage::new(0, 1, 1, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let p = s.period(&c).to_f64();
        let expect = 4.0 * (10.0 / p) + 4.0 * (2.0 / p);
        assert!((m.steady_power(&c, &s) - expect).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_one_equals_peak() {
        let c = chain();
        let mut m = PowerModel::typical();
        m.idle_fraction = 1.0;
        let s = Herad::new().schedule(&c, Resources::new(2, 2)).unwrap();
        assert!((m.steady_power(&c, &s) - m.peak_power(&s)).abs() < 1e-9);
    }

    #[test]
    fn milliwatt_round_trips() {
        for mw in [0u64, 1, 7, 999, 1000, 4000, 123_456, 9_999_999] {
            assert_eq!(watts_to_milliwatts(milliwatts_to_watts(mw)), mw);
        }
        for w in [0.0f64, 0.001, 0.2, 1.0, 4.0, 17.3] {
            let back = milliwatts_to_watts(watts_to_milliwatts(w));
            assert!((back - w).abs() <= 5e-4, "watts {w} -> {back}");
        }
        // Nonsense draws clamp instead of poisoning the wire.
        assert_eq!(watts_to_milliwatts(-3.0), 0);
        assert_eq!(watts_to_milliwatts(f64::NAN), 0);
        assert_eq!(watts_to_milliwatts(f64::INFINITY), 0);
    }

    #[test]
    fn typical_models_agree() {
        let m = PowerModel::typical().to_milli();
        assert_eq!(m, MilliPower::typical());
        let back = m.to_watts();
        assert_eq!(back, PowerModel::typical());
    }

    #[test]
    fn exact_power_matches_float_model() {
        let c = chain();
        let float = PowerModel::typical();
        let milli = float.to_milli();
        for (big, little) in [(1u64, 1u64), (2, 2), (3, 1), (0, 4)] {
            let Some(s) = Herad::new().schedule(&c, Resources::new(big, little)) else {
                continue;
            };
            let p = s.period(&c);
            let exact = milli.solution_power_mw(&c, &s, p).to_f64() / 1000.0;
            let approx = float.steady_power(&c, &s);
            assert!(
                (exact - approx).abs() < 1e-9,
                "exact {exact} vs float {approx}"
            );
        }
    }

    #[test]
    fn rounding_is_nearest() {
        assert_eq!(round_mw(Ratio::new(5, 2)), 3); // 2.5 -> 3
        assert_eq!(round_mw(Ratio::new(9, 4)), 2); // 2.25 -> 2
        assert_eq!(round_mw(Ratio::from_int(7)), 7);
        assert_eq!(round_mw(Ratio::INFINITY), u64::MAX);
    }

    #[test]
    fn zero_core_stage_power_is_infinite() {
        let c = chain();
        let s = Stage::new(0, 2, 0, CoreType::Big);
        let p = MilliPower::typical().stage_power_mw(&c, &s, Ratio::from_int(100));
        assert!(p.is_infinite());
    }
}
