//! Host package for the workspace integration tests; see `/tests/*.rs`.
